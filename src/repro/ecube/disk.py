"""The external-memory Evolving Data Cube (Section 3.5).

Differences from the in-memory cube:

* historic slices live on simulated disk pages
  (:class:`repro.storage.PagedArray`, 8 KiB pages, 4-byte cells, so one
  page holds 2048 cells);
* the cache stays in main memory -- touching it costs cell accesses but no
  I/O;
* lazy copying is *page-wise*: the copy-ahead step performs at most one
  page write per update, and "a single page write copies 2048 cells",
  which is why the disk variant never leaves more than one historic
  instance incomplete (Table 4);
* per-operation cost is the number of distinct pages touched (the paper
  used no caching across operations; within one operation a page is
  charged once).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.directory import TimeDirectory
from repro.core.errors import AppendOrderError, DomainError
from repro.core.types import Box
from repro.ecube.cache import SliceCache
from repro.ecube.slices import ECubeSliceEngine
from repro.metrics import CostCounter
from repro.storage.layout import DEFAULT_CELL_SIZE, DEFAULT_PAGE_SIZE
from repro.storage.pages import PageAccessTracker, PagedArray


class _DiskSlice:
    """One historic (or latest) slice stored across simulated pages."""

    __slots__ = ("store", "ps_flags")

    def __init__(
        self, shape: tuple[int, ...], page_size: int, cell_size: int,
        counter: CostCounter,
    ) -> None:
        self.store = PagedArray(shape, page_size, cell_size, counter)
        # The PS/DDC flag bit rides inside the cell on disk; tracking it in
        # memory here does not change page counts.
        self.ps_flags = np.zeros(shape, dtype=bool)


class DiskEvolvingDataCube:
    """Append-only MOLAP cube with page-granular historic storage."""

    def __init__(
        self,
        slice_shape: Sequence[int],
        num_times: int | None = None,
        counter: CostCounter | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        cell_size: int = DEFAULT_CELL_SIZE,
    ) -> None:
        self.slice_shape = tuple(int(n) for n in slice_shape)
        if any(n <= 0 for n in self.slice_shape):
            raise DomainError(f"invalid slice shape {self.slice_shape}")
        self.num_times = int(num_times) if num_times is not None else None
        self.counter = counter if counter is not None else CostCounter()
        self.engine = ECubeSliceEngine(self.slice_shape)
        self.page_size = page_size
        self.cell_size = cell_size
        self.directory: TimeDirectory[_DiskSlice] = TimeDirectory()
        self.cache: SliceCache | None = None
        self.updates_applied = 0
        # roving page pointer of the page-wise copy-ahead
        self._copy_slice_index = 0
        self._copy_page = 0
        self.last_op_page_accesses = 0

    @property
    def ndim(self) -> int:
        return 1 + len(self.slice_shape)

    @property
    def num_slices(self) -> int:
        return len(self.directory)

    def incomplete_historic_instances(self) -> int:
        if self.cache is None:
            return 0
        return self.cache.incomplete_instances()

    # -- updates ----------------------------------------------------------------

    def update(self, point: Sequence[int], delta: int) -> None:
        """Add ``delta`` at ``point``; at most one copy-ahead page write."""
        tracker = PageAccessTracker()
        self._update(point, delta, tracker)
        self.updates_applied += 1
        self.last_op_page_accesses = tracker.flush_to(self.counter)

    def update_many(
        self, points: Sequence[Sequence[int]], deltas: Sequence[int]
    ) -> None:
        """Apply a batch of append-ordered updates with shared page charging.

        One :class:`PageAccessTracker` covers the whole batch, so a page
        touched by several updates (adjacent update sets, repeated lazy
        copies into the same slice page) is charged once per batch --
        the page-touch amortization the in-memory batch path gets from
        sorting work by slice.  ``last_op_page_accesses`` afterwards holds
        the batch total.
        """
        points = [tuple(int(c) for c in point) for point in points]
        deltas = [int(delta) for delta in deltas]
        if len(points) != len(deltas):
            raise DomainError("need exactly one delta per point")
        tracker = PageAccessTracker()
        for point, delta in zip(points, deltas):
            self._update(point, delta, tracker)
            self.updates_applied += 1
        self.last_op_page_accesses = tracker.flush_to(self.counter)

    def _update(
        self, point: Sequence[int], delta: int, tracker: PageAccessTracker
    ) -> None:
        point = tuple(int(c) for c in point)
        if len(point) != self.ndim:
            raise DomainError(f"point arity {len(point)} != {self.ndim}")
        time, cell = point[0], point[1:]
        for coord, size in zip(cell, self.slice_shape):
            if not 0 <= coord < size:
                raise DomainError(f"cell {cell} outside {self.slice_shape}")
        delta = int(delta)

        if not self.directory:
            self.directory.append(time, self._new_slice())
            self.cache = SliceCache(self.slice_shape, self.counter)
        elif time > self.directory.latest_time:
            self.directory.append(time, self._new_slice())
            self.cache.notice_new_time()
        elif time < self.directory.latest_time:
            raise AppendOrderError(
                f"update at time {time} precedes latest occurring time "
                f"{self.directory.latest_time}"
            )
        cache = self.cache
        last_index = cache.last_index

        for affected in self.engine.update_cells(cell):
            value, stamp = cache.read(affected)
            if stamp < last_index:
                with self.counter.copying():
                    for index in range(stamp, last_index):
                        _, payload = self.directory.at_index(index)
                        if payload.ps_flags[affected]:
                            continue
                        payload.store.write(affected, value, tracker)
                cache.restamp(affected, last_index)
            cache.apply_delta(affected, delta)

        self._page_copy_ahead(tracker)

    def _new_slice(self) -> _DiskSlice:
        return _DiskSlice(
            self.slice_shape, self.page_size, self.cell_size, self.counter
        )

    def _page_copy_ahead(self, tracker: PageAccessTracker) -> None:
        """At most one page write copying pending cells of the earliest
        incomplete slice (Section 3.5)."""
        cache = self.cache
        if cache.pending == 0:
            return
        target = cache.min_stamp_index()
        if target >= cache.last_index:
            return
        if target != self._copy_slice_index:
            self._copy_slice_index = target
            self._copy_page = 0
        _, payload = self.directory.at_index(target)
        store = payload.store
        per_page = store.cells_per_page
        flat_values = cache.values.reshape(-1)
        flat_stamps = cache.stamps.reshape(-1)
        flags_flat = payload.ps_flags.reshape(-1)
        num_cells = cache.num_cells
        # find the next page of this slice holding cells still stamped at
        # the target index
        for _ in range(store.num_pages):
            page = self._copy_page
            start = page * per_page
            stop = min(start + per_page, num_cells)
            stamps = flat_stamps[start:stop]
            pending_mask = stamps == target
            self._copy_page = (page + 1) % store.num_pages
            if not pending_mask.any():
                continue
            linear = np.nonzero(pending_mask)[0] + start
            writable = linear[~flags_flat[linear]]
            with self.counter.copying():
                if writable.size:
                    store.write_page(
                        page,
                        writable.tolist(),
                        flat_values[writable].tolist(),
                        tracker,
                    )
                    self.counter.write_cells(int(writable.size))
                else:
                    # every pending cell on the page was already converted
                    # to PS by a query; only the stamps advance
                    pass
            for cell_linear in linear.tolist():
                cell = tuple(
                    int(c)
                    for c in np.unravel_index(cell_linear, cache.shape)
                )
                cache.restamp(cell, target + 1)
            return

    # -- queries -----------------------------------------------------------------

    def query(self, box: Box) -> int:
        """Aggregate over an inclusive d-dimensional box, counting pages."""
        if box.ndim != self.ndim:
            raise DomainError(f"box arity {box.ndim} != cube arity {self.ndim}")
        if not self.directory:
            self.last_op_page_accesses = 0
            return 0
        tracker = PageAccessTracker()
        time_low, time_up = box.time_range
        slice_box = box.drop_first().clip_to(self.slice_shape)
        upper = self._prefix_time_query(slice_box, time_up, tracker)
        lower = self._prefix_time_query(slice_box, time_low - 1, tracker)
        self.last_op_page_accesses = tracker.flush_to(self.counter)
        return upper - lower

    def query_many(self, boxes: Sequence[Box]) -> list[int]:
        """Answer a batch of queries, work sorted by slice, pages shared.

        All directory lookups are resolved up front against one snapshot
        of the occurring-time array; the per-slice jobs are then evaluated
        in slice order under a single :class:`PageAccessTracker`, so a
        page consulted by several queries of the batch is charged once.
        """
        boxes = list(boxes)
        for box in boxes:
            if box.ndim != self.ndim:
                raise DomainError(
                    f"box arity {box.ndim} != cube arity {self.ndim}"
                )
        if not self.directory:
            self.last_op_page_accesses = 0
            return [0] * len(boxes)
        slice_boxes = [
            box.drop_first().clip_to(self.slice_shape) for box in boxes
        ]
        times = self.directory.times()
        per_slice: dict[int, list[tuple[int, int]]] = {}
        for i, box in enumerate(boxes):
            time_low, time_up = box.time_range
            for bound, sign in ((time_up, 1), (time_low - 1, -1)):
                lo, hi = 0, len(times)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if times[mid] <= bound:
                        lo = mid + 1
                    else:
                        hi = mid
                if lo - 1 >= 0:
                    per_slice.setdefault(lo - 1, []).append((i, sign))
        results = [0] * len(boxes)
        tracker = PageAccessTracker()
        for slice_index in sorted(per_slice):
            for i, sign in per_slice[slice_index]:
                results[i] += sign * self._slice_query(
                    slice_index, slice_boxes[i], tracker
                )
        self.last_op_page_accesses = tracker.flush_to(self.counter)
        return results

    def _prefix_time_query(
        self, slice_box: Box, time: int, tracker: PageAccessTracker
    ) -> int:
        found = self.directory.floor_index(time)
        if found < 0:
            return 0
        return self._slice_query(found, slice_box, tracker)

    def _slice_query(
        self, slice_index: int, slice_box: Box, tracker: PageAccessTracker
    ) -> int:
        _, payload = self.directory.at_index(slice_index)
        cache = self.cache
        counter = self.counter
        store = payload.store
        flags = payload.ps_flags

        def read(cell: tuple[int, ...]) -> tuple[int, bool]:
            counter.read_cells()
            if flags[cell]:
                return store.read(cell, tracker), True
            if cache.peek_stamp(cell) > slice_index:
                return store.read(cell, tracker), False
            return cache.peek_value(cell), False

        if slice_index < cache.last_index:
            def mark(cell: tuple[int, ...], ps_value: int) -> None:
                store.write(cell, ps_value, tracker)
                flags[cell] = True
        else:
            mark = None

        return self.engine.range_query(slice_box, read, mark)

    def total(self) -> int:
        if not self.directory:
            return 0
        full = Box(
            (0,) * len(self.slice_shape),
            tuple(n - 1 for n in self.slice_shape),
        )
        tracker = PageAccessTracker()
        result = self._slice_query(len(self.directory) - 1, full, tracker)
        self.last_op_page_accesses = tracker.flush_to(self.counter)
        return result

    def __repr__(self) -> str:
        return (
            f"DiskEvolvingDataCube(slice_shape={self.slice_shape}, "
            f"slices={self.num_slices}, updates={self.updates_applied})"
        )
