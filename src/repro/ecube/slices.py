"""The eCube slice algebra: lazy conversion of DDC values to PS values.

Section 3.2: a historic time slice starts out DDC-pre-aggregated in the
non-time dimensions.  Each cell carries a flag bit distinguishing a DDC
value from an already-converted PS value.  A prefix lookup ``PS(k)`` at a
DDC cell materializes

    PS(k) = DDC(k) + sum over nonempty S of (-1)^(|S|+1) * PS(corner_S)

where ``corner_S`` replaces ``k_i`` by ``prev(k_i)`` (the DDC/Fenwick parent
boundary) for every dimension ``i`` in ``S`` -- the multi-dimensional form
of the paper's worked example ``PS(2,5) = PS(1,5) + PS(2,3) - PS(1,3) +
DDC(2,5)``.  Computed PS values are written back and flagged, so the slice
*evolves* toward pure PS with no extra access overhead; the recursion is
restricted to exactly the index sets the DDC technique yields, as the paper
prescribes.

The engine is storage-agnostic: cell access goes through a tiny reader /
writer protocol so the same algorithm serves the in-memory cube (numpy
slices, read-through to the cache) and the disk cube (paged slices).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.errors import DomainError
from repro.core.types import Box
from repro.preagg.ddc import DDCTechnique

#: Reads the (value, is_ps_flag) of a slice cell; one counted cell access.
CellReader = Callable[[tuple[int, ...]], tuple[int, bool]]
#: Writes a converted PS value (and sets the flag); may be a no-op.
CellMarker = Callable[[tuple[int, ...], int], None]


class ECubeSliceEngine:
    """Query algebra for one (d-1)-dimensional eCube slice shape.

    One engine instance is shared by all slices of a cube (it is stateless
    apart from the per-dimension DDC techniques).
    """

    def __init__(self, shape: Sequence[int]) -> None:
        self.shape = tuple(int(n) for n in shape)
        if not self.shape:
            raise DomainError("slice shape must have at least one dimension")
        self.techniques = [DDCTechnique(n) for n in self.shape]
        self.ndim = len(self.shape)
        self._subset_masks = list(range(1, 1 << self.ndim))

    # -- prefix (half-open) queries -----------------------------------------

    def prefix(
        self,
        corner: Sequence[int],
        read: CellReader,
        mark: CellMarker | None,
    ) -> int:
        """The prefix sum ``PS(corner)``, converting DDC cells on the way.

        ``corner`` entries may be -1 (empty selection in that dimension).
        ``mark`` persists conversions; pass ``None`` for slices whose
        content is not final (the latest slice) -- recursion then memoizes
        per-query only, charging one read per revisit exactly as a
        persisted conversion would.
        """
        memo: dict[tuple[int, ...], int] = {}
        return self._prefix(tuple(int(c) for c in corner), read, mark, memo)

    def _prefix(
        self,
        corner: tuple[int, ...],
        read: CellReader,
        mark: CellMarker | None,
        memo: dict[tuple[int, ...], int],
    ) -> int:
        if any(c < 0 for c in corner):
            return 0
        for c, n in zip(corner, self.shape):
            if c >= n:
                raise DomainError(f"corner {corner} outside shape {self.shape}")
        if corner in memo:
            # The paper's algorithm re-reads the now-converted (or, on the
            # latest slice, notionally converted) cell on every revisit --
            # e.g. Figure 6 reads PS(1,3) three times.  Charge the read so
            # counted costs match the paper's trace exactly.
            read(corner)
            return memo[corner]
        value, is_ps = read(corner)
        if is_ps:
            memo[corner] = value
            return value
        prevs = tuple(
            technique.prev(c) for technique, c in zip(self.techniques, corner)
        )
        total = value
        for mask in self._subset_masks:
            sub_corner = tuple(
                prevs[i] if (mask >> i) & 1 else corner[i]
                for i in range(self.ndim)
            )
            sign = 1 if bin(mask).count("1") % 2 == 1 else -1
            total += sign * self._prefix(sub_corner, read, mark, memo)
        if mark is not None:
            mark(corner, total)
        memo[corner] = total
        return total

    # -- general range queries -----------------------------------------------

    def range_query(
        self,
        box: Box,
        read: CellReader,
        mark: CellMarker | None,
    ) -> int:
        """A general (d-1)-dimensional range aggregate on one slice.

        Reduced to at most ``2^(d-1)`` prefix queries by inclusion-exclusion
        (the PS reduction); each prefix is evaluated with the evolving
        algorithm above.  This is why a fresh eCube is slightly costlier
        than DDC's direct range algorithm (Figures 10/11).
        """
        if box.ndim != self.ndim:
            raise DomainError(f"box arity {box.ndim} != slice arity {self.ndim}")
        # Degenerate boxes select nothing: a range entirely outside the
        # domain (or inverted after clipping) is an explicit empty result,
        # not a clip error and not a silently skipped corner term.
        for low, up, size in zip(box.lower, box.upper, self.shape):
            if low > up or low >= size or up < 0:
                return 0
        box = box.clip_to(self.shape)
        total = 0
        for mask in range(1 << self.ndim):
            corner = tuple(
                box.lower[i] - 1 if (mask >> i) & 1 else box.upper[i]
                for i in range(self.ndim)
            )
            if any(c < -1 for c in corner):
                raise DomainError(f"corner {corner} below domain")
            sign = -1 if bin(mask).count("1") % 2 == 1 else 1
            if any(c < 0 for c in corner):
                continue
            total += sign * self.prefix(corner, read, mark)
        return total

    # -- update support ---------------------------------------------------------

    def update_cells(self, index: Sequence[int]) -> list[tuple[int, ...]]:
        """Slice cells affected by a raw update at ``index`` (DDC cross set).

        All DDC update coefficients are +1, so only indices are returned.
        """
        if len(index) != self.ndim:
            raise DomainError(f"index arity {len(index)} != {self.ndim}")
        per_dim = [
            [idx for idx, _ in technique.update_terms(int(c))]
            for technique, c in zip(self.techniques, index)
        ]
        cells: list[tuple[int, ...]] = [()]
        for dim_indices in per_dim:
            cells = [cell + (idx,) for cell in cells for idx in dim_indices]
        return cells

    def worst_case_update_cells(self) -> int:
        """Upper bound (log2 N)^(d-1) on cells touched by one update."""
        bound = 1
        for n in self.shape:
            bound *= max(1, n.bit_length())
        return bound
