"""Compiled inner loops of the fast execution engine.

The fast path spends its time in four tight loops: the PS
inclusion-exclusion corner gather that answers batched range queries,
the scatter-add that lands batched DDC updates in the cache, the
stale-cell selection of the lazy-copy sweeps, and the per-cell
reconstruction of a mixed slice's effective DDC array.  This module
provides each of them twice:

* **numba** -- ``@njit(nogil=True, cache=True)`` kernels.  ``nogil``
  matters as much as the speed: with the GIL released during
  evaluation, :class:`~repro.concurrent.ParallelExecutor` threads can
  overlap again instead of serializing on the interpreter.  ``cache``
  persists the compiled machine code next to this file so worker
  processes (``repro.sharding``) don't pay the JIT on every spawn.
* **pure NumPy** -- a bit-identical fallback (all arithmetic is exact
  int64, so loop order never changes a result) selected automatically
  when numba is not importable, or forced with ``REPRO_NO_NUMBA=1``.

Selection happens once at import time and is reported by
:func:`backend_name`.  Importing this module must never warn or fail
because numba is missing: the fallback *is* a supported backend, and
every differential/golden-cost test passes on either one.

The log-step Fenwick-to-prefix-sum conversion
(:func:`fenwick_to_ps_inplace`) is shared by both backends: it already
runs as ``O(log n)`` whole-array NumPy operations per axis, which is
memory-bound either way.
"""

from __future__ import annotations

import os

import numpy as np


def _fallback_forced() -> bool:
    return os.environ.get("REPRO_NO_NUMBA", "").strip() not in ("", "0")


# -- pure NumPy reference implementations --------------------------------------
#
# These are the semantics; the numba kernels below are line-for-line loop
# translations.  Keeping the reference in plain NumPy (not vectorized
# cleverness that could drift) is what lets the differential tests pin
# both backends to the same integers.


def _ps_corner_gather_numpy(
    ps_flat: np.ndarray,
    strides: np.ndarray,
    base: np.ndarray,
    lowers: np.ndarray,
    uppers: np.ndarray,
    out: np.ndarray,
) -> None:
    """Batch PS inclusion-exclusion over ``2^ndim`` corners.

    ``ps_flat`` is one (or a stack of) row-major prefix-sum arrays;
    ``base[i]`` is the flat offset of box ``i``'s array, ``strides`` the
    element strides of one array.  ``out`` must be zero-initialized;
    boxes are already clipped (``0 <= lowers <= uppers < shape``).
    """
    n = lowers.shape[0]
    ndim = strides.shape[0]
    for corner in range(1 << ndim):
        flat = base.copy()
        ok = np.ones(n, dtype=bool)
        sign = 1
        for axis in range(ndim):
            if corner >> axis & 1:
                low = lowers[:, axis] - 1
                ok &= low >= 0
                flat += np.maximum(low, 0) * strides[axis]
                sign = -sign
            else:
                flat += uppers[:, axis] * strides[axis]
        values = ps_flat[flat]
        if sign < 0:
            np.subtract(out, values, out=out, where=ok)
        else:
            np.add(out, values, out=out, where=ok)


def _scatter_add_numpy(
    values_flat: np.ndarray, indices: np.ndarray, deltas: np.ndarray
) -> None:
    """``values_flat[indices] += deltas`` with repeated indices."""
    np.add.at(values_flat, indices, deltas)


def _select_writable_numpy(
    targets: np.ndarray, flags_flat: np.ndarray
) -> np.ndarray:
    """The subset of ``targets`` whose conversion flag is clear.

    This is the inner selection of every lazy-copy sweep: a converted
    (PS-flagged) cell must not receive a copied DDC value.
    """
    return targets[~flags_flat[targets]]


def _effective_ddc_batch_numpy(
    values2d: np.ndarray,
    flags2d: np.ndarray,
    stamps_flat: np.ndarray,
    cache_flat: np.ndarray,
    indices: np.ndarray,
    out2d: np.ndarray,
) -> np.ndarray:
    """Reconstruct many slices' effective DDC arrays in one pass.

    Row ``r`` of ``values2d``/``flags2d`` is one mixed slice (flattened)
    evaluated at slice index ``indices[r]``; the cache arrays are shared
    by every row.  Writes every row of ``out2d`` (``out2d`` may alias
    ``values2d``) and returns a boolean row mask of *unrecoverable*
    slices -- their output rows are unspecified and the caller routes
    them to the per-box fallback.
    """
    newer = stamps_flat[None, :] > indices[:, None]
    any_flags = bool(flags2d.any())
    if any_flags:
        bad = np.any(flags2d & newer, axis=1)
        stale = flags2d | ~newer
    else:
        # common case (no conversions yet): every row is recoverable and
        # the flag mask drops out of the selection
        bad = np.zeros(values2d.shape[0], dtype=bool)
        stale = ~newer
    if out2d is values2d:
        # in-place: only the cells routed to the cache need writing
        np.copyto(out2d, cache_flat[None, :], where=stale)
    else:
        np.copyto(out2d, np.where(stale, cache_flat[None, :], values2d))
    return bad


def _effective_ddc_numpy(
    values_flat: np.ndarray,
    flags_flat: np.ndarray,
    stamps_flat: np.ndarray,
    cache_flat: np.ndarray,
    slice_index: int,
    out: np.ndarray,
) -> bool:
    """Reconstruct a mixed slice's effective DDC array into ``out``.

    Returns ``False`` (leaving ``out`` unspecified) when any flagged
    cell's stamp moved past the slice -- its DDC value is unrecoverable
    and the caller must fall back to the per-box / metered paths.
    """
    newer = stamps_flat > slice_index
    if bool(np.any(flags_flat & newer)):
        return False
    np.copyto(out, np.where(~flags_flat & newer, values_flat, cache_flat))
    return True


# -- backend selection ---------------------------------------------------------

NUMBA_ACTIVE = False
ps_corner_gather = _ps_corner_gather_numpy
scatter_add = _scatter_add_numpy
select_writable = _select_writable_numpy
effective_ddc = _effective_ddc_numpy
effective_ddc_batch = _effective_ddc_batch_numpy


def _build_numba_kernels():
    """Compile the numba kernels; any failure selects the NumPy fallback."""
    from numba import njit

    @njit(nogil=True, cache=True)
    def ps_corner_gather_nb(ps_flat, strides, base, lowers, uppers, out):
        n = lowers.shape[0]
        ndim = strides.shape[0]
        for i in range(n):
            acc = np.int64(0)
            for corner in range(1 << ndim):
                flat = base[i]
                sign = np.int64(1)
                ok = True
                for axis in range(ndim):
                    if corner >> axis & 1:
                        coord = lowers[i, axis] - 1
                        if coord < 0:
                            ok = False
                            break
                        sign = -sign
                    else:
                        coord = uppers[i, axis]
                    flat += coord * strides[axis]
                if ok:
                    acc += sign * ps_flat[flat]
            out[i] = acc

    @njit(nogil=True, cache=True)
    def scatter_add_nb(values_flat, indices, deltas):
        for k in range(indices.shape[0]):
            values_flat[indices[k]] += deltas[k]

    @njit(nogil=True, cache=True)
    def select_writable_nb(targets, flags_flat):
        out = np.empty(targets.shape[0], dtype=np.int64)
        m = 0
        for k in range(targets.shape[0]):
            t = targets[k]
            if not flags_flat[t]:
                out[m] = t
                m += 1
        return out[:m]

    @njit(nogil=True, cache=True)
    def effective_ddc_nb(
        values_flat, flags_flat, stamps_flat, cache_flat, slice_index, out
    ):
        for k in range(values_flat.shape[0]):
            flagged = flags_flat[k]
            newer = stamps_flat[k] > slice_index
            if flagged and newer:
                return False
            if not flagged and newer:
                out[k] = values_flat[k]
            else:
                out[k] = cache_flat[k]
        return True

    @njit(nogil=True, cache=True)
    def effective_ddc_batch_nb(
        values2d, flags2d, stamps_flat, cache_flat, indices, out2d
    ):
        m, n = values2d.shape
        bad = np.zeros(m, dtype=np.bool_)
        for r in range(m):
            idx = indices[r]
            row_bad = False
            for k in range(n):
                flagged = flags2d[r, k]
                newer = stamps_flat[k] > idx
                if flagged and newer:
                    row_bad = True
                if not flagged and newer:
                    out2d[r, k] = values2d[r, k]
                else:
                    out2d[r, k] = cache_flat[k]
            bad[r] = row_bad
        return bad

    # warm every kernel on tiny inputs: surfaces typing/compilation
    # errors here (where we can still fall back cleanly) instead of on
    # the first real query, and populates the on-disk cache
    i64 = lambda *xs: np.array(xs, dtype=np.int64)  # noqa: E731
    ps = np.arange(4, dtype=np.int64)
    out1 = np.zeros(1, dtype=np.int64)
    ps_corner_gather_nb(
        ps, i64(2, 1), i64(0), i64(0, 0).reshape(1, 2),
        i64(1, 1).reshape(1, 2), out1,
    )
    vals = np.zeros(4, dtype=np.int64)
    scatter_add_nb(vals, i64(1, 1, 3), i64(2, 3, 4))
    flags = np.array([True, False, True, False])
    picked = select_writable_nb(i64(0, 1, 3), flags)
    eff = np.empty(4, dtype=np.int64)
    okay = effective_ddc_nb(vals, flags, i64(0, 2, 0, 2), ps, 1, eff)
    eff2 = np.empty((2, 4), dtype=np.int64)
    bad = effective_ddc_batch_nb(
        np.vstack((vals, vals)),
        np.vstack((flags, flags)),
        i64(0, 2, 0, 2),
        ps,
        i64(1, 3),
        eff2,
    )
    if (
        int(out1[0]) != 3
        or vals.tolist() != [0, 5, 0, 4]
        or picked.tolist() != [1, 3]
        or not okay
        or eff2[0].tolist() != eff.tolist()
        or bad.tolist() != [False, False]
    ):  # pragma: no cover - would indicate a miscompiled kernel
        raise AssertionError("numba kernel warmup produced wrong results")
    return (
        ps_corner_gather_nb,
        scatter_add_nb,
        select_writable_nb,
        effective_ddc_nb,
        effective_ddc_batch_nb,
    )


if not _fallback_forced():  # pragma: no branch
    try:
        (
            ps_corner_gather,
            scatter_add,
            select_writable,
            effective_ddc,
            effective_ddc_batch,
        ) = _build_numba_kernels()
        NUMBA_ACTIVE = True
    except Exception:
        # numba missing, incompatible, or failed to compile: the NumPy
        # fallback is a fully supported backend -- never warn, never fail
        NUMBA_ACTIVE = False


def backend_name() -> str:
    """Which implementation serves the hot kernels: ``numba`` or ``numpy``."""
    return "numba" if NUMBA_ACTIVE else "numpy"


# -- shared (backend-independent) conversions ----------------------------------


def fenwick_to_ps_inplace(block: np.ndarray, axes_sizes, axis_offset: int = 0):
    """Convert DDC (Fenwick) axes of ``block`` to prefix sums, in place.

    ``block`` holds one slice -- or a stack of slices, with
    ``axis_offset=1`` skipping the stack axis.  Per axis this runs the
    Fenwick path recurrence ``P1[j] = F1[j] + P1[j - lowbit(j)]`` by
    descending ``lowbit``: every position whose lowest set bit is
    ``2^b`` reads a source whose lowest set bit is strictly larger and
    therefore already final.  That turns the O(n)-step ``deaggregate``
    + ``cumsum`` pipeline into ``O(log n)`` whole-array adds per axis
    while producing identical integers (int64 addition is associative
    even under wraparound).
    """
    for axis, size in enumerate(axes_sizes):
        view = np.moveaxis(block, axis + axis_offset, 0)
        for bit in range(size.bit_length() - 1, -1, -1):
            step = 1 << bit
            # 1-indexed targets with lowbit == step are step, 3*step,
            # 5*step, ...; each reads source ``target - step``.  The
            # first target's source is 0 (no-op), so start at 3*step.
            # Basic strided slices, not index arrays: the residues are
            # disjoint, so the in-place add is race-free and each pass
            # is a single strided memory sweep.
            tgt = view[3 * step - 1 :: 2 * step]
            if tgt.shape[0]:
                tgt += view[2 * step - 1 :: 2 * step][: tgt.shape[0]]
    return block
