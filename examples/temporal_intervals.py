"""Objects with extent in time: phone-call analytics (Section 2.4).

Phone calls are intervals [start, end] tagged with a cell-tower id (the
one-dimensional key).  The B/C reduction answers "how many calls were in
progress intersecting this time window, on towers 10-20?" with three
snapshot queries, and the dominance construction answers containment
("calls that started and ended inside the maintenance window").

Run with:  python examples/temporal_intervals.py
"""

from __future__ import annotations

import numpy as np

from repro import IntervalAggregator, TimeInterval


def main() -> None:
    rng = np.random.default_rng(31)
    calls = IntervalAggregator()

    # A day of calls in seconds; arrival ordered by call start.
    num_calls = 5_000
    starts = np.sort(rng.integers(0, 86_400, size=num_calls))
    records = []
    for start in starts:
        duration = int(rng.gamma(2.0, 90.0)) + 1
        tower = int(rng.integers(0, 64))
        interval = TimeInterval(int(start), int(start) + duration)
        calls.insert(interval, key=tower, value=1)
        records.append((interval, tower))
    print(f"recorded {calls.objects_inserted} calls, "
          f"{calls.pending_ends} still pending their end event")

    # Busy-hour analysis: calls intersecting each hour, all towers.
    print("\ncalls intersecting each hour (towers 0-63):")
    for hour in range(0, 24, 3):
        window = TimeInterval(hour * 3600, (hour + 1) * 3600 - 1)
        count = calls.intersecting(window, 0, 63)
        brute = sum(1 for iv, _ in records if iv.intersects(window))
        assert count == brute
        print(f"  {hour:02d}:00-{hour + 1:02d}:00  {count:6d} calls")

    # Tower-range selection.
    window = TimeInterval(12 * 3600, 13 * 3600)
    subset = calls.intersecting(window, 10, 20)
    brute = sum(1 for iv, t in records if iv.intersects(window) and 10 <= t <= 20)
    assert subset == brute
    print(f"\ncalls on towers 10-20 intersecting the noon hour: {subset}")

    # Containment: calls fully inside the evening maintenance window.
    maintenance = TimeInterval(20 * 3600, 22 * 3600)
    contained = calls.containment(maintenance)
    brute = sum(1 for iv, _ in records if iv.contained_in(maintenance))
    assert contained == brute
    print(f"calls fully inside 20:00-22:00: {contained}")

    # Peak concurrency needs MAX -- not invertible, so outside the
    # framework; the SB-tree-style index (Section 6's temporal-aggregation
    # line) provides it.
    from repro import TemporalAggregateTree

    load = TemporalAggregateTree()
    for interval, _tower in records:
        load.insert(interval, 1)
    noon = (12 * 3600, 13 * 3600 - 1)
    peak = load.max_over(*noon)
    avg = load.integral(*noon) / 3600
    print(
        f"\nconcurrent calls during the noon hour: peak {peak}, "
        f"average {avg:.1f} (SB-tree index; MAX is outside the "
        "invertible-operator framework)"
    )


if __name__ == "__main__":
    main()
