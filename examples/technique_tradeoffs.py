"""The pre-aggregation trade-off spectrum, measured, and the advisor.

Section 3.1 frames pre-aggregation as a spectrum of query/update cost
trade-offs per dimension.  This example measures all five techniques on
the same data and workload, shows why the paper pairs PS (time) with DDC
(other dimensions), lets the advisor pick assignments for different
workload mixes, and finishes by persisting a warehouse cube and restoring
it.

Run with:  python examples/technique_tradeoffs.py
"""

from __future__ import annotations

import numpy as np

from repro import Box, CostCounter, EvolvingDataCube, PreAggregatedArray
from repro.preagg import recommend_techniques
from repro.storage import dumps_cube, loads_cube
from repro.workloads import uni_queries

SHAPE = (64, 64)


def measure(techniques, raw, queries, updates):
    counter = CostCounter()
    array = PreAggregatedArray(SHAPE, list(techniques), values=raw, counter=counter)
    counter.reset()
    for box in queries:
        array.range_sum(box)
    query_cost = counter.cell_reads / len(queries)
    counter.reset()
    for point, delta in updates:
        array.update(point, delta)
    update_cost = counter.snapshot().cell_accesses / len(updates)
    return query_cost, update_cost


def main() -> None:
    rng = np.random.default_rng(3)
    raw = rng.integers(0, 20, size=SHAPE)
    queries = list(uni_queries(SHAPE, 300, seed=4))
    updates = [
        (
            (int(rng.integers(0, SHAPE[0])), int(rng.integers(0, SHAPE[1]))),
            int(rng.integers(-5, 9)),
        )
        for _ in range(300)
    ]

    print(f"mean cell accesses on a {SHAPE[0]}x{SHAPE[1]} array "
          f"(300 uni queries / 300 point updates):\n")
    print(f"{'techniques':12s} {'query':>8s} {'update':>8s}")
    for techniques in [
        ("A", "A"), ("PS", "PS"), ("RPS", "RPS"),
        ("LPS", "LPS"), ("DDC", "DDC"), ("PS", "DDC"),
    ]:
        q, u = measure(techniques, raw, queries, updates)
        label = "x".join(techniques)
        print(f"{label:12s} {q:8.1f} {u:8.1f}")

    print("\nthe advisor's picks by workload mix (TT-dimension pinned to PS):")
    for weight in (0.1, 0.5, 0.9):
        rec = recommend_techniques(SHAPE, query_weight=weight, tt_dimension=0)
        print(
            f"  query weight {weight:.1f}: {'x'.join(rec.techniques):10s} "
            f"(predicted query {rec.expected_query_cost:6.1f}, "
            f"update {rec.expected_update_cost:6.1f})"
        )

    # Persistence: a warehouse survives restarts with its conversion and
    # copy state intact.
    print("\npersisting and restoring an eCube warehouse ...")
    dense = rng.integers(0, 4, size=(24, 16, 16))
    cube = EvolvingDataCube.from_dense(dense)
    probe = Box((3, 2, 2), (20, 13, 13))
    before = cube.query(probe)
    blob = dumps_cube(cube)
    restored = loads_cube(blob)
    assert restored.query(probe) == before
    print(
        f"  archive: {len(blob):,} bytes; query answers identical "
        f"({before}) after restore"
    )


if __name__ == "__main__":
    main()
