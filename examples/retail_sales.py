"""Retail data warehouse: roll-ups, late bookings and drill-downs.

The paper's motivating scenario (Section 1): a sales warehouse where
transactions arrive in commit order, analysts compare months and regions,
and some sales are registered late (out-of-order updates, Section 2.5).

This example uses the general framework with a persistent-tree slice
structure -- the sparse instantiation -- plus the ``G_d`` buffer and its
background drain, and shows month-over-month and year-over-year roll-ups
built from range aggregates.

Run with:  python examples/retail_sales.py
"""

from __future__ import annotations

import numpy as np

from repro import AppendOnlyAggregator, Box

DAYS_PER_MONTH = 30
MONTHS = 24
NUM_STORES = 50


def month_range(month: int) -> tuple[int, int]:
    return month * DAYS_PER_MONTH, (month + 1) * DAYS_PER_MONTH - 1


def main() -> None:
    rng = np.random.default_rng(7)
    warehouse = AppendOnlyAggregator(ndim=2, out_of_order=True)

    # Two years of daily sales across 50 stores; store 7 trends upward.
    for day in range(MONTHS * DAYS_PER_MONTH):
        for _ in range(int(rng.integers(20, 40))):
            store = int(rng.integers(0, NUM_STORES))
            amount = int(rng.integers(10, 500))
            if store == 7:
                amount += day // 30  # slow upward trend
            warehouse.update((day, store), amount)

    # A few sales were booked late: historic corrections into G_d.
    for _ in range(200):
        day = int(rng.integers(0, MONTHS * DAYS_PER_MONTH - 60))
        warehouse.update((day, int(rng.integers(0, NUM_STORES))), 42)
    print(f"late bookings buffered in G_d: {warehouse.buffered_updates}")

    def revenue(month: int, store_low: int = 0, store_up: int = NUM_STORES - 1):
        low, up = month_range(month)
        return warehouse.query(Box((low, store_low), (up, store_up)))

    print("\nmonth-over-month, all stores (first year):")
    for month in range(12):
        print(f"  month {month:2d}: {revenue(month):>9,}")

    print("\nsame-month year-over-year, store 7:")
    for month in range(12):
        y1 = revenue(month, 7, 7)
        y2 = revenue(month + 12, 7, 7)
        change = 100.0 * (y2 - y1) / max(1, y1)
        print(f"  month {month:2d}: {y1:>7,} -> {y2:>7,}  ({change:+.1f}%)")

    # The background process drains the buffer; queries keep their answers.
    before = revenue(3)
    drained = warehouse.drain()
    assert revenue(3) == before
    print(f"\ndrained {drained} late bookings; answers unchanged")
    print(f"instances in the directory: {warehouse.num_instances}")


if __name__ == "__main__":
    main()
