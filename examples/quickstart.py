"""Quickstart: append-only aggregation with the Evolving Data Cube.

Builds a small 3-dimensional cube (time x store x product), streams
append-only sales into it, and runs range aggregates whose cost is
independent of how long the recorded history is -- the paper's headline
property.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Box, CostCounter, EvolvingDataCube


def main() -> None:
    num_stores, num_products = 16, 32
    counter = CostCounter()
    cube = EvolvingDataCube(
        slice_shape=(num_stores, num_products), counter=counter
    )

    # Stream three months of sales, day by day (the TT-dimension is days).
    rng = np.random.default_rng(2002)
    for day in range(90):
        for _ in range(rng.integers(5, 15)):
            store = int(rng.integers(0, num_stores))
            product = int(rng.integers(0, num_products))
            amount = int(rng.integers(1, 200))
            cube.update((day, store, product), amount)

    print(f"cube: {cube}")
    print(f"occurring days: {cube.num_slices}")

    # "What is the overall revenue of stores 0-3 over the last month?"
    last_month = Box((60, 0, 0), (89, 3, num_products - 1))
    counter.reset()
    revenue = cube.query(last_month)
    print(f"revenue of stores 0-3, days 60-89: {revenue}")
    print(f"  cell accesses: {counter.cell_reads}")

    # Re-running the query is cheaper: the eCube converted the touched
    # historic cells from DDC to PS form on the way.
    counter.reset()
    assert cube.query(last_month) == revenue
    print(f"  cell accesses on repeat: {counter.cell_reads} (eCube converged)")

    # Queries over ancient history cost the same as recent ones -- the
    # framework reduces any time range to two cumulative instances.
    ancient = Box((0, 0, 0), (29, 3, num_products - 1))
    counter.reset()
    cube.query(ancient)
    first = counter.cell_reads
    counter.reset()
    cube.query(ancient)
    print(f"days 0-29 query: {first} accesses, repeat {counter.cell_reads}")


if __name__ == "__main__":
    main()
