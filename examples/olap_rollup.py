"""OLAP on an append-only warehouse: roll-up, drill-down, data cube, aging.

The paper motivates the framework with exactly this analysis loop
(Section 1): revenue by month and region, comparisons across granularity
levels, the data cube operator's group-bys -- all "collections of related
range queries" -- plus data aging (Section 7) when old detail is retired.

This example wires the full stack together: a multi-measure eCube
(revenue + units + implicit count), dimension hierarchies, the roll-up /
drill-down / data-cube API, AVG as SUM/COUNT, and retirement of the
oldest detail while all-of-history aggregates stay answerable.

Run with:  python examples/olap_rollup.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AgedOutError,
    Box,
    CubeView,
    Dimension,
    EvolvingDataCube,
    Hierarchy,
    MeasureCube,
    uniform_hierarchy,
)

DAYS, STORES, PRODUCTS = 56, 8, 12  # 8 weeks of history


def main() -> None:
    warehouse = MeasureCube(
        lambda: EvolvingDataCube((STORES, PRODUCTS), num_times=DAYS),
        measures=("revenue", "units"),
    )
    rng = np.random.default_rng(2002)
    for day in range(DAYS):
        for _ in range(int(rng.integers(10, 25))):
            store = int(rng.integers(0, STORES))
            product = int(rng.integers(0, PRODUCTS))
            units = int(rng.integers(1, 6))
            price = int(rng.integers(5, 40))
            warehouse.update(
                (day, store, product), revenue=units * price, units=units
            )

    day = Dimension("day", DAYS).with_level(uniform_hierarchy("week", DAYS, 7))
    store = Dimension("store", STORES).with_level(
        Hierarchy("region", ((0, 3), (4, 7)), ("east", "west"))
    )
    product = Dimension("product", PRODUCTS).with_level(
        uniform_hierarchy("category", PRODUCTS, 4)
    )
    revenue_view = CubeView(warehouse.backend("revenue"), [day, store, product])

    print("revenue by week x region:")
    weekly = revenue_view.rollup({"day": "week", "store": "region"})
    for row in weekly.to_rows():
        week, region, _product, value = row
        print(f"  {week:12s} {region:6s} {value:8,}")

    print("\ndrill into week 3, store 5, day by day:")
    drill = revenue_view.drill_down(
        {"day": "week"}, into="day", finer_level="detail", store=5
    )
    for d in range(21, 28):
        print(f"  day {d:2d}: {drill.cell(d, 0, 0):6,}")

    print("\naverage basket revenue per region (AVG as SUM/COUNT):")
    for name, stores in (("east", (0, 3)), ("west", (4, 7))):
        box = Box((0, stores[0], 0), (DAYS - 1, stores[1], PRODUCTS - 1))
        print(f"  {name}: {warehouse.average(box, 'revenue'):8.2f}")

    print("\nthe data cube operator (2^2 group-bys over region x category):")

    class _TwoDimBackend:
        """Project the 3-d cube onto (store, product) for the demo."""

        def query(self, box: Box) -> int:
            return warehouse.query(
                Box((0,) + box.lower, (DAYS - 1,) + box.upper), "revenue"
            )

    region_category_view = CubeView(_TwoDimBackend(), [store, product])
    for grouped, result in region_category_view.data_cube(
        levels={"store": "region", "product": "category"}
    ).items():
        label = " x ".join(grouped) if grouped else "(grand total)"
        print(f"  group-by {label}: {result.values.reshape(-1).tolist()}")

    # Data aging: retire the first four weeks of detail.
    backend = warehouse.backend("revenue")
    retired = backend.retire_before(28)
    print(f"\nretired {retired} detail slices (first four weeks)")
    all_history = Box((0, 0, 0), (DAYS - 1, STORES - 1, PRODUCTS - 1))
    print(f"all-history revenue still answerable: {backend.query(all_history):,}")
    try:
        backend.query(Box((10, 0, 0), (40, STORES - 1, PRODUCTS - 1)))
    except AgedOutError as error:
        print(f"detail query into the retired region correctly refused:\n  {error}")


if __name__ == "__main__":
    main()
