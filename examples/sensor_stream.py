"""Environmental sensor stream: the weather workload end to end.

Mirrors the paper's evaluation scenario: clustered weather stations report
cloud measurements in timely order; the append-only cube integrates the
stream and serves latitude/longitude range aggregates whose cost shrinks
as the eCube converts queried regions from DDC to PS form.

Also demonstrates the external-memory variant: the same stream against
simulated 8 KiB pages, reporting page I/O per operation.

Run with:  python examples/sensor_stream.py
"""

from __future__ import annotations

from repro import Box, CostCounter, DiskEvolvingDataCube, EvolvingDataCube
from repro.metrics import rolling_average
from repro.workloads import uni_queries, weather4


def main() -> None:
    data = weather4(scale=0.2, seed=11)
    print(f"dataset: {data.name} shape={data.shape} updates={data.num_updates} "
          f"density={data.density():.4f}")

    counter = CostCounter()
    cube = EvolvingDataCube(
        data.slice_shape,
        num_times=data.shape[0],
        counter=counter,
        min_density=data.density(),
    )
    for point, delta in data.updates():
        cube.update(point, delta)
    integration = counter.snapshot()
    print(
        f"integrated {data.num_updates} reports: "
        f"{integration.cell_accesses} cell accesses "
        f"({integration.copy_cost} spent on lazy copying), "
        f"incomplete instances now: {cube.incomplete_historic_instances()}"
    )

    # Analyst queries: cost per query falls as the cube converges.
    queries = uni_queries(data.shape, 600, seed=12)
    costs = []
    for box in queries:
        before = counter.snapshot()
        cube.query(box)
        costs.append((counter.snapshot() - before).cell_reads)
    groups = rolling_average(costs, 100)
    print("query cost, rolling averages of 100:")
    for index, value in enumerate(groups):
        print(f"  queries {index * 100:4d}-{index * 100 + 99:4d}: {value:7.1f}")

    # The same stream against the disk variant.
    disk = DiskEvolvingDataCube(data.slice_shape, num_times=data.shape[0])
    for point, delta in data.updates():
        disk.update(point, delta)
    box = Box(
        (0,) + tuple(0 for _ in data.slice_shape),
        (data.shape[0] - 1,) + tuple(n - 1 for n in data.slice_shape),
    )
    total = disk.query(box)
    print(
        f"disk variant: total count {total} "
        f"({disk.last_op_page_accesses} page accesses for the full-history "
        "query)"
    )
    assert total == cube.query(box)


if __name__ == "__main__":
    main()
