"""CLI smoke tests and assorted coverage of small surfaces."""

from __future__ import annotations

import pytest

import repro
from repro.__main__ import main as repro_main
from repro.core import errors


class TestPackage:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__

    def test_module_docstring_quickstart_is_valid(self):
        # the package docstring shows a runnable snippet; keep it honest
        from repro import Box, EvolvingDataCube

        cube = EvolvingDataCube(slice_shape=(8, 8), num_times=16)
        cube.update((0, 2, 3), +5)
        cube.update((1, 2, 3), +7)
        assert cube.query(Box((0, 0, 0), (1, 7, 7))) == 12


class TestCLI:
    def test_info(self, capsys):
        assert repro_main([]) == 0
        out = capsys.readouterr().out
        assert "SIGMOD 2002" in out
        assert "EvolvingDataCube" in out

    def test_demo(self, capsys):
        assert repro_main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "range aggregate" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            repro_main(["frobnicate"])


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for name in (
            "AppendOrderError",
            "DomainError",
            "EmptyStructureError",
            "OperatorError",
            "StorageError",
            "AgedOutError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)
            assert issubclass(cls, Exception)

    def test_catchable_as_base(self):
        from repro.core.types import Box

        with pytest.raises(errors.ReproError):
            Box((2,), (1,))
