"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.core.types import Box
from repro.metrics import CostCounter

# Hypothesis profiles: the stateful suites (test_stateful*.py) build
# their settings on top of whichever profile is loaded here (conftest
# imports before any test module), so these defaults reach them too.
#
# * "ci" derandomizes: every CI run executes the same example sequence,
#   so a red build is reproducible locally by loading the same profile.
# * "dev" keeps random exploration but prints the failing example blob
#   (`@reproduce_failure(...)`) so any failure can be replayed exactly.
#
# Select explicitly with HYPOTHESIS_PROFILE=ci|dev; otherwise the CI
# environment variable picks "ci".
settings.register_profile(
    "ci", derandomize=True, print_blob=True, deadline=None
)
settings.register_profile("dev", print_blob=True, deadline=None)
settings.load_profile(
    os.environ.get(
        "HYPOTHESIS_PROFILE", "ci" if os.environ.get("CI") else "dev"
    )
)


@pytest.fixture
def counter() -> CostCounter:
    return CostCounter()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def brute_box_sum(dense: np.ndarray, box: Box) -> int:
    """Reference aggregate: plain numpy sum over the inclusive box."""
    slices = tuple(slice(low, up + 1) for low, up in zip(box.lower, box.upper))
    return int(dense[slices].sum())


def random_box(rng: np.random.Generator, shape: tuple[int, ...]) -> Box:
    """A random inclusive box within an array of the given shape."""
    lower = []
    upper = []
    for n in shape:
        a, b = sorted(int(v) for v in rng.integers(0, n, size=2))
        lower.append(a)
        upper.append(b)
    return Box(tuple(lower), tuple(upper))


def apply_updates(dense_shape, updates):
    """Materialize a list of (point, delta) updates as a dense cube."""
    dense = np.zeros(dense_shape, dtype=np.int64)
    for point, delta in updates:
        dense[tuple(point)] += delta
    return dense
