"""Tests for data sets, query workloads and stream shaping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DomainError
from repro.workloads.datasets import (
    GAUSS3_FULL_SHAPE,
    WEATHER4_FULL_SHAPE,
    WEATHER6_FULL_SHAPE,
    dataset_by_name,
    gauss3,
    uniform,
    weather4,
    weather6,
)
from repro.workloads.queries import skew_queries, uni_queries
from repro.workloads.streams import (
    interleave_out_of_order,
    segment_arrays,
    session_replay,
    split_stream,
)


class TestDatasets:
    @pytest.mark.parametrize(
        "generator,target_density,full_shape",
        [
            (weather4, 0.0073, WEATHER4_FULL_SHAPE),
            (weather6, 0.0039, WEATHER6_FULL_SHAPE),
            (gauss3, 0.048, GAUSS3_FULL_SHAPE),
        ],
    )
    def test_density_near_table3(self, generator, target_density, full_shape):
        data = generator()
        assert data.density() == pytest.approx(target_density, rel=0.25)
        assert data.ndim == len(full_shape)

    def test_full_scale_shapes(self):
        # scale=1.0 must reproduce the paper's shapes without generating
        # (generation at full scale is allowed but slow; only check shape
        # arithmetic here through a tiny scale round trip)
        assert weather4(scale=0.1).ndim == 4
        assert weather6(scale=0.1).ndim == 6
        assert gauss3(scale=0.1).ndim == 3

    def test_updates_sorted_by_time(self):
        data = gauss3(scale=0.1)
        times = data.coords[:, 0]
        assert (np.diff(times) >= 0).all()

    def test_determinism(self):
        a = weather4(scale=0.15, seed=5)
        b = weather4(scale=0.15, seed=5)
        assert (a.coords == b.coords).all()
        assert (a.values == b.values).all()
        c = weather4(scale=0.15, seed=6)
        assert not (
            a.coords.shape == c.coords.shape and (a.coords == c.coords).all()
        )

    def test_dense_matches_stream(self):
        data = gauss3(scale=0.08)
        dense = data.dense()
        assert dense.sum() == data.values.sum()
        rebuilt = np.zeros(data.shape, dtype=np.int64)
        for point, delta in data.updates():
            rebuilt[point] += delta
        assert (rebuilt == dense).all()

    def test_weather_measure_types(self):
        assert weather4(scale=0.12).measure == "COUNT"
        assert (weather4(scale=0.12).values == 1).all()
        assert weather6(scale=0.3).measure == "SUM"

    def test_dataset_by_name(self):
        assert dataset_by_name("gauss3", scale=0.08).name == "gauss3"
        with pytest.raises(DomainError):
            dataset_by_name("weather99")

    def test_uniform(self):
        data = uniform((16, 16), density=0.1, seed=1)
        assert data.shape == (16, 16)
        assert data.num_updates == int(0.1 * 256)
        with pytest.raises(DomainError):
            uniform((16,), density=0)

    def test_scale_validation(self):
        with pytest.raises(DomainError):
            weather4(scale=0.0)
        with pytest.raises(DomainError):
            weather4(scale=1.5)

    def test_updates_per_slice_positive(self):
        data = weather6(scale=0.3)
        counts = data.updates_per_slice()
        assert counts.sum() == data.num_updates
        assert (counts > 0).all()


class TestQueryWorkloads:
    def test_queries_within_domain(self):
        shape = (20, 30, 7)
        for workload in (uni_queries(shape, 300, seed=1), skew_queries(shape, 300, seed=1)):
            assert len(workload) == 300
            for box in workload:
                assert box.ndim == 3
                for low, up, n in zip(box.lower, box.upper, shape):
                    assert 0 <= low <= up < n

    def test_predicate_mix_roughly_matches_section5(self):
        shape = (1000,)
        workload = uni_queries(shape, 4000, seed=2)
        prefix = sum(
            1 for b in workload if b.lower[0] == 0 and b.upper[0] < 999
        )
        point = sum(1 for b in workload if b.lower[0] == b.upper[0])
        complete = sum(
            1 for b in workload if b.lower[0] == 0 and b.upper[0] == 999
        )
        # prefix ~10%, point ~10% (plus general ranges that degenerate),
        # complete ~10%; wide tolerances for sampling noise
        assert 0.05 < prefix / 4000 < 0.25
        assert 0.05 < point / 4000 < 0.25
        assert 0.05 < complete / 4000 < 0.20

    def test_skew_concentrates(self):
        shape = (100, 100)
        workload = skew_queries(shape, 1000, seed=3)
        # at least ~70% of queries fit inside some half-sized region
        spans = [
            (up - low + 1)
            for box in workload
            for low, up in zip(box.lower, box.upper)
        ]
        half_or_less = sum(1 for span in spans if span <= 50)
        assert half_or_less / len(spans) > 0.6

    def test_determinism(self):
        a = uni_queries((10, 10), 50, seed=4)
        b = uni_queries((10, 10), 50, seed=4)
        assert a.queries == b.queries

    def test_validation(self):
        with pytest.raises(DomainError):
            uni_queries((0,), 10)
        with pytest.raises(DomainError):
            uni_queries((5,), 0)


class TestStreams:
    def test_out_of_order_preserves_multiset(self):
        data = uniform((32, 8), density=0.5, seed=7)
        original = list(data.updates())
        shaped = list(interleave_out_of_order(original, 0.3, seed=7))
        assert sorted(shaped) == sorted(original)

    def test_fraction_zero_is_identity(self):
        data = uniform((16, 4), density=0.5, seed=8)
        original = list(data.updates())
        assert list(interleave_out_of_order(original, 0.0)) == original

    def test_some_updates_actually_arrive_late(self):
        data = uniform((64, 4), density=0.8, seed=9)
        original = list(data.updates())
        shaped = list(interleave_out_of_order(original, 0.4, seed=9))
        late = sum(
            1
            for i in range(1, len(shaped))
            if shaped[i][0][0] < max(u[0][0] for u in shaped[:i])
        )
        assert late > 0

    def test_validation(self):
        with pytest.raises(DomainError):
            list(interleave_out_of_order([], 1.5))
        with pytest.raises(DomainError):
            list(interleave_out_of_order([], 0.5, max_delay=0))

    def test_split_stream(self):
        updates = [((0, 1), 1), ((3, 1), 1), ((7, 1), 1)]
        before, after = split_stream(updates, 3)
        assert before == [((0, 1), 1), ((3, 1), 1)]
        assert after == [((7, 1), 1)]


class TestSessionReplay:
    def test_arrival_sorted_but_out_of_order_in_start(self):
        segments = session_replay(30, (8, 8), seed=1)
        arrivals = [s.arrival for s in segments]
        assert arrivals == sorted(arrivals)
        starts = [s.interval.start for s in segments]
        assert any(a > b for a, b in zip(starts, starts[1:]))
        # arrival never precedes the segment's end (collected after the fact)
        assert all(s.arrival >= s.interval.end for s in segments)

    def test_session_shape_invariants(self):
        segments = session_replay(25, (4,), seed=2, segment_period=5)
        by_session: dict[int, list] = {}
        for s in segments:
            assert 0 <= s.cell[0] < 4
            assert s.value >= 1
            by_session.setdefault(s.session, []).append(s)
        for members in by_session.values():
            # one cell per session; extent capped at one hour
            assert len({m.cell for m in members}) == 1
            low = min(m.interval.start for m in members)
            high = max(m.interval.end for m in members)
            assert high - low < 3600
            # within a session, segments never overlap and stay ordered
            spans = sorted((m.interval.start, m.interval.end) for m in members)
            for (_, e1), (s2, _) in zip(spans, spans[1:]):
                assert s2 > e1
        # at least one session idles between bursts (a 15..30 min gap)
        gaps = []
        for members in by_session.values():
            spans = sorted((m.interval.start, m.interval.end) for m in members)
            gaps.extend(s2 - e1 for (_, e1), (s2, _) in zip(spans, spans[1:]))
        assert any(15 * 60 <= gap <= 30 * 60 + 60 for gap in gaps)

    def test_determinism_and_arrays(self):
        a = session_replay(10, (3, 3), seed=5)
        b = session_replay(10, (3, 3), seed=5)
        assert a == b
        intervals, cells, values = segment_arrays(a)
        assert intervals.shape == (len(a), 2)
        assert cells.shape == (len(a), 2)
        assert values.shape == (len(a),)
        assert (intervals[:, 1] >= intervals[:, 0]).all()
        empty = segment_arrays([])
        assert empty[0].shape == (0, 2) and empty[2].shape == (0,)

    def test_validation(self):
        with pytest.raises(DomainError):
            session_replay(0, (4,))
        with pytest.raises(DomainError):
            session_replay(3, ())
        with pytest.raises(DomainError):
            session_replay(3, (4,), idle_range=(0, 10))
        with pytest.raises(DomainError):
            session_replay(3, (4,), session_cap=0)
