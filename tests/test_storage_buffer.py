"""Tests for the LRU buffer pool."""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.storage.buffer import LRUBufferPool


class TestLRUBufferPool:
    def test_capacity_validated(self):
        with pytest.raises(StorageError):
            LRUBufferPool(-1)

    def test_zero_capacity_always_misses(self):
        pool = LRUBufferPool(0)
        assert not pool.access((0, 1))
        assert not pool.access((0, 1))
        assert pool.misses == 2
        assert pool.hits == 0
        assert len(pool) == 0

    def test_hits_after_first_access(self):
        pool = LRUBufferPool(4)
        assert not pool.access((0, 1))
        assert pool.access((0, 1))
        assert pool.hits == 1
        assert pool.misses == 1
        assert pool.hit_rate == 0.5

    def test_lru_eviction_order(self):
        pool = LRUBufferPool(2)
        pool.access((0, 1))
        pool.access((0, 2))
        pool.access((0, 1))  # refresh page 1
        pool.access((0, 3))  # evicts page 2
        assert pool.access((0, 1))  # still resident
        assert not pool.access((0, 2))  # was evicted
        assert pool.evictions >= 1

    def test_charge_counts_misses(self):
        pool = LRUBufferPool(8)
        assert pool.charge([(0, 1), (0, 2), (0, 3)]) == 3
        assert pool.charge([(0, 2), (0, 3), (0, 4)]) == 1

    def test_distinct_stores_do_not_collide(self):
        pool = LRUBufferPool(8)
        pool.access((0, 7))
        assert not pool.access((1, 7))

    def test_invalidate_and_clear(self):
        pool = LRUBufferPool(8)
        pool.access((0, 1))
        pool.invalidate((0, 1))
        assert not pool.access((0, 1))
        pool.clear()
        assert len(pool) == 0

    def test_empty_hit_rate(self):
        assert LRUBufferPool(2).hit_rate == 0.0

    def test_working_set_behaviour(self):
        # a working set within capacity converges to 100% hits
        pool = LRUBufferPool(4)
        working_set = [(0, p) for p in range(4)]
        pool.charge(working_set)
        for _ in range(10):
            assert pool.charge(working_set) == 0
        # a working set beyond capacity thrashes under LRU
        pool = LRUBufferPool(3)
        working_set = [(0, p) for p in range(4)]
        for _ in range(5):
            assert pool.charge(working_set) == 4
