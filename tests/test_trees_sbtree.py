"""Tests for the SB-tree-style temporal aggregation index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError, EmptyStructureError
from repro.core.types import TimeInterval
from repro.trees.sbtree import TemporalAggregateTree

HORIZON = 80


def brute_f(intervals, t):
    return sum(v for iv, v in intervals if iv.start <= t <= iv.end)


@st.composite
def interval_sets(draw):
    count = draw(st.integers(1, 50))
    intervals = []
    for _ in range(count):
        start = draw(st.integers(0, HORIZON - 1))
        end = draw(st.integers(start, HORIZON - 1))
        value = draw(st.integers(1, 9))
        intervals.append((TimeInterval(start, end), value))
    return intervals


class TestBasics:
    def test_empty(self):
        tree = TemporalAggregateTree()
        assert tree.value_at(5) == 0
        assert tree.total_active() == 0
        assert len(tree) == 0
        with pytest.raises(EmptyStructureError):
            tree.span()

    def test_single_interval(self):
        tree = TemporalAggregateTree()
        tree.insert(TimeInterval(3, 7), 5)
        assert tree.value_at(2) == 0
        assert tree.value_at(3) == 5
        assert tree.value_at(7) == 5
        assert tree.value_at(8) == 0
        assert tree.total_active() == 0  # +5 and -5 cancel at infinity
        assert tree.span() == (3, 8)

    def test_overlapping_intervals(self):
        tree = TemporalAggregateTree()
        tree.insert(TimeInterval(0, 10), 1)
        tree.insert(TimeInterval(5, 15), 1)
        tree.insert(TimeInterval(8, 9), 1)
        assert tree.value_at(4) == 1
        assert tree.value_at(6) == 2
        assert tree.value_at(8) == 3
        assert tree.value_at(12) == 1

    def test_inverted_windows_rejected(self):
        tree = TemporalAggregateTree()
        tree.insert(TimeInterval(0, 1), 1)
        with pytest.raises(DomainError):
            tree.integral(5, 3)
        with pytest.raises(DomainError):
            tree.max_over(5, 3)


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(intervals=interval_sets())
    def test_value_at(self, intervals):
        tree = TemporalAggregateTree()
        for interval, value in intervals:
            tree.insert(interval, value)
        for t in range(-2, HORIZON + 2):
            assert tree.value_at(t) == brute_f(intervals, t)

    @settings(max_examples=40, deadline=None)
    @given(intervals=interval_sets(), data=st.data())
    def test_integral(self, intervals, data):
        tree = TemporalAggregateTree()
        for interval, value in intervals:
            tree.insert(interval, value)
        t_low = data.draw(st.integers(0, HORIZON - 1))
        t_up = data.draw(st.integers(t_low, HORIZON - 1))
        expected = sum(brute_f(intervals, t) for t in range(t_low, t_up + 1))
        assert tree.integral(t_low, t_up) == expected

    @settings(max_examples=40, deadline=None)
    @given(intervals=interval_sets(), data=st.data())
    def test_extrema(self, intervals, data):
        tree = TemporalAggregateTree()
        for interval, value in intervals:
            tree.insert(interval, value)
        t_low = data.draw(st.integers(0, HORIZON - 1))
        t_up = data.draw(st.integers(t_low, HORIZON - 1))
        values = [brute_f(intervals, t) for t in range(t_low, t_up + 1)]
        assert tree.max_over(t_low, t_up) == max(values)
        assert tree.min_over(t_low, t_up) == min(values)

    def test_interleaved_inserts_and_queries(self):
        rng = np.random.default_rng(120)
        tree = TemporalAggregateTree()
        intervals = []
        for _ in range(150):
            start = int(rng.integers(0, HORIZON))
            end = int(start + rng.integers(0, 20))
            value = int(rng.integers(1, 6))
            tree.insert(TimeInterval(start, end), value)
            intervals.append((TimeInterval(start, end), value))
            t = int(rng.integers(0, HORIZON))
            assert tree.value_at(t) == brute_f(intervals, t)
            a, b = sorted(int(x) for x in rng.integers(0, HORIZON, size=2))
            assert tree.max_over(a, b) == max(
                brute_f(intervals, t) for t in range(a, b + 1)
            )


class TestComplexity:
    def test_logarithmic_costs(self):
        rng = np.random.default_rng(121)
        tree = TemporalAggregateTree()
        for _ in range(5000):
            start = int(rng.integers(0, 100_000))
            tree.insert(TimeInterval(start, start + int(rng.integers(1, 500))))
        tree.node_accesses = 0
        tree.value_at(50_000)
        assert tree.node_accesses <= 60
        tree.node_accesses = 0
        tree.max_over(40_000, 60_000)
        # one prefix walk + one two-boundary range scan
        assert tree.node_accesses <= 200

    def test_max_is_the_non_invertible_frontier(self):
        """The framework rejects MAX (Section 1); the SB-tree provides it."""
        from repro.core.operators import get_operator
        from repro.core.errors import OperatorError

        with pytest.raises(OperatorError):
            get_operator("MAX")
        tree = TemporalAggregateTree()
        tree.insert(TimeInterval(0, 4), 3)
        tree.insert(TimeInterval(2, 6), 4)
        assert tree.max_over(0, 6) == 7
