"""Tests for incrementally maintained roll-up views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DomainError
from repro.core.types import Box
from repro.olap import Dimension, uniform_hierarchy
from repro.olap.materialized import MaterializedRollups

from tests.conftest import brute_box_sum, random_box


def make_schema():
    day = Dimension("day", 28).with_level(uniform_hierarchy("week", 28, 7))
    store = Dimension("store", 8).with_level(
        uniform_hierarchy("region", 8, 4)
    )
    product = Dimension("product", 6).with_level(
        uniform_hierarchy("category", 6, 3)
    )
    return [day, store, product]


@pytest.fixture
def loaded():
    rollups = MaterializedRollups(make_schema())
    rollups.add_view("weekly_by_region", {"day": "week", "store": "region"})
    rollups.add_view(
        "weekly_full",
        {"day": "week", "store": "region", "product": "category"},
    )
    rng = np.random.default_rng(190)
    dense = np.zeros((28, 8, 6), dtype=np.int64)
    for day in range(28):
        for _ in range(8):
            point = (
                day,
                int(rng.integers(0, 8)),
                int(rng.integers(0, 6)),
            )
            value = int(rng.integers(1, 30))
            rollups.update(point, value)
            dense[point] += value
    return rollups, dense, rng


class TestViewManagement:
    def test_needs_tt_plus_one(self):
        with pytest.raises(DomainError):
            MaterializedRollups([Dimension("day", 10)])

    def test_duplicate_view_rejected(self):
        rollups = MaterializedRollups(make_schema())
        rollups.add_view("v", {"day": "week"})
        with pytest.raises(DomainError):
            rollups.add_view("v", {"day": "week"})

    def test_unknown_dimension_rejected(self):
        rollups = MaterializedRollups(make_schema())
        with pytest.raises(DomainError):
            rollups.add_view("v", {"color": "week"})

    def test_views_frozen_after_first_update(self):
        rollups = MaterializedRollups(make_schema())
        rollups.update((0, 0, 0), 1)
        with pytest.raises(DomainError):
            rollups.add_view("late", {"day": "week"})

    def test_views_ordered_coarsest_first(self, loaded):
        rollups, _dense, _rng = loaded
        assert rollups.view_names == ("weekly_full", "weekly_by_region")


class TestRouting:
    def test_aligned_queries_hit_the_coarsest_view(self, loaded):
        rollups, dense, _rng = loaded
        # weeks 1-2, region 1, all categories: aligned for weekly_full
        box = Box((7, 4, 0), (20, 7, 5))
        assert rollups.query(box) == dense[7:21, 4:8].sum()
        stats = {name: answered for name, _c, _u, answered in rollups.view_stats()}
        assert stats["weekly_full"] == 1
        assert stats["weekly_by_region"] == 0

    def test_partially_aligned_falls_to_finer_view(self, loaded):
        rollups, dense, _rng = loaded
        # product range not category-aligned -> weekly_by_region (detail
        # product) answers
        box = Box((0, 0, 1), (13, 3, 4))
        assert rollups.query(box) == dense[0:14, 0:4, 1:5].sum()
        stats = {name: answered for name, _c, _u, answered in rollups.view_stats()}
        assert stats["weekly_by_region"] == 1

    def test_unaligned_falls_to_base(self, loaded):
        rollups, dense, _rng = loaded
        box = Box((3, 2, 1), (17, 5, 4))  # nothing aligned
        assert rollups.query(box) == dense[3:18, 2:6, 1:5].sum()
        stats = {name: answered for name, _c, _u, answered in rollups.view_stats()}
        assert sum(stats.values()) == 0

    def test_all_routes_agree_with_base(self, loaded):
        rollups, dense, rng = loaded
        for _ in range(60):
            box = random_box(rng, (28, 8, 6))
            expected = brute_box_sum(dense, box)
            assert rollups.query(box) == expected
            assert rollups.query_base(box) == expected

    def test_every_view_received_every_update(self, loaded):
        rollups, _dense, _rng = loaded
        for _name, _cells, routed, _answered in rollups.view_stats():
            assert routed == rollups.updates_applied

    def test_view_queries_cheaper_than_base(self, loaded):
        rollups, _dense, _rng = loaded
        box = Box((0, 0, 0), (27, 7, 5))  # fully aligned everywhere
        counter_view = rollups._views[0].cube.counter
        counter_base = rollups.base.counter
        counter_view.reset()
        counter_base.reset()
        rollups.query(box)
        rollups.query_base(box)
        assert counter_view.cell_reads <= counter_base.cell_reads
