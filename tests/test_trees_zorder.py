"""Tests for the Z-order sparse slice structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError
from repro.core.framework import AppendOnlyAggregator
from repro.trees.zorder import ZOrderSliceStructure, interleave_bits

from tests.conftest import brute_box_sum, random_box


class TestInterleave:
    def test_2d_basics(self):
        # (x, y) with y contributing the lower of each bit pair
        assert interleave_bits((0, 0), 2) == 0
        assert interleave_bits((0, 1), 2) == 1
        assert interleave_bits((1, 0), 2) == 2
        assert interleave_bits((1, 1), 2) == 3
        assert interleave_bits((2, 0), 2) == 8

    def test_codes_unique(self):
        codes = {
            interleave_bits((x, y, z), 3)
            for x in range(8)
            for y in range(8)
            for z in range(8)
        }
        assert len(codes) == 512

    def test_quadrant_contiguity(self):
        # all cells of an aligned quadrant form a contiguous code range
        origin = (4, 2)
        bits = 3
        codes = sorted(
            interleave_bits((origin[0] + dx, origin[1] + dy), bits)
            for dx in range(2)
            for dy in range(2)
        )
        assert codes == list(range(codes[0], codes[0] + 4))


class TestSliceStructure:
    def test_shape_validated(self):
        with pytest.raises(DomainError):
            ZOrderSliceStructure(())
        with pytest.raises(DomainError):
            ZOrderSliceStructure((4, 0))

    def test_cell_bounds(self):
        structure = ZOrderSliceStructure((4, 4))
        with pytest.raises(DomainError):
            structure.update((4, 0), 1)
        with pytest.raises(DomainError):
            structure.update((0,), 1)

    def test_clipping_and_empty(self):
        structure = ZOrderSliceStructure((4, 4))
        structure.update((1, 1), 5)
        assert structure.range_sum((-3, -3), (10, 10)) == 5
        assert structure.range_sum((2, 2), (1, 1)) == 0  # empty after clip?
        # inverted after clipping yields zero rather than an error
        assert structure.range_sum((3, 3), (0, 0)) == 0

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_matches_dense_reference(self, data):
        ndim = data.draw(st.integers(1, 3))
        shape = tuple(data.draw(st.integers(2, 9)) for _ in range(ndim))
        count = data.draw(st.integers(1, 80))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        structure = ZOrderSliceStructure(shape)
        dense = np.zeros(shape, dtype=np.int64)
        for _ in range(count):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            delta = int(rng.integers(-5, 9))
            structure.update(cell, delta)
            dense[cell] += delta
        for _ in range(10):
            box = random_box(rng, shape)
            assert structure.range_sum(box.lower, box.upper) == brute_box_sum(
                dense, box
            )

    def test_snapshots_immutable(self):
        structure = ZOrderSliceStructure((8, 8))
        structure.update((2, 2), 10)
        old = structure.snapshot()
        structure.update((2, 2), 5)
        assert old.range_sum((0, 0), (7, 7)) == 10
        assert structure.range_sum((0, 0), (7, 7)) == 15

    def test_with_update_for_drain(self):
        structure = ZOrderSliceStructure((8, 8))
        structure.update((1, 1), 3)
        snapshot = structure.snapshot().with_update((5, 5), 7)
        assert snapshot.range_sum((0, 0), (7, 7)) == 10
        assert structure.range_sum((0, 0), (7, 7)) == 3  # live unaffected


class TestFrameworkIntegration:
    """The framework with genuinely multi-dimensional sparse slices."""

    def test_3d_append_only_aggregation(self):
        shape = (24, 10, 12)  # time x two slice dimensions
        agg = AppendOnlyAggregator(
            slice_factory=lambda: ZOrderSliceStructure(shape[1:]), ndim=3
        )
        rng = np.random.default_rng(71)
        dense = np.zeros(shape, dtype=np.int64)
        times = np.sort(rng.integers(0, shape[0], size=200))
        for t in times:
            cell = (int(rng.integers(0, 10)), int(rng.integers(0, 12)))
            delta = int(rng.integers(1, 7))
            agg.update((int(t),) + cell, delta)
            dense[(int(t),) + cell] += delta
        for _ in range(25):
            box = random_box(rng, shape)
            assert agg.query(box) == brute_box_sum(dense, box)

    def test_3d_with_out_of_order_and_drain(self):
        shape = (16, 6, 6)
        agg = AppendOnlyAggregator(
            slice_factory=lambda: ZOrderSliceStructure(shape[1:]),
            ndim=3,
            out_of_order=True,
        )
        rng = np.random.default_rng(72)
        dense = np.zeros(shape, dtype=np.int64)
        updates = []
        times = np.sort(rng.integers(0, shape[0], size=100))
        for t in times:
            cell = (int(rng.integers(0, 6)), int(rng.integers(0, 6)))
            updates.append(((int(t),) + cell, int(rng.integers(1, 5))))
        from repro.workloads.streams import interleave_out_of_order

        for point, delta in interleave_out_of_order(updates, 0.25, seed=5):
            agg.update(point, delta)
            dense[point] += delta
        boxes = [random_box(rng, shape) for _ in range(10)]
        for box in boxes:
            assert agg.query(box) == brute_box_sum(dense, box)
        agg.drain()
        for box in boxes:
            assert agg.query(box) == brute_box_sum(dense, box)
