"""Tests for the OLAP layer (hierarchies, roll-up, data cube operator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DomainError
from repro.ecube.ecube import EvolvingDataCube
from repro.olap import CubeView, Dimension, Hierarchy, uniform_hierarchy


class TestHierarchy:
    def test_contiguity_enforced(self):
        with pytest.raises(DomainError):
            Hierarchy("bad", ((0, 2), (4, 5)))
        with pytest.raises(DomainError):
            Hierarchy("bad", ((1, 2),))
        with pytest.raises(DomainError):
            Hierarchy("bad", ((0, 2), (3, 1)))
        with pytest.raises(DomainError):
            Hierarchy("empty", ())

    def test_uniform(self):
        weeks = uniform_hierarchy("week", 30, 7)
        assert len(weeks) == 5
        assert weeks.buckets[0] == (0, 6)
        assert weeks.buckets[-1] == (28, 29)
        assert weeks.size == 30

    def test_labels(self):
        quarters = Hierarchy(
            "quarter", ((0, 2), (3, 5)), ("Q1", "Q2")
        )
        assert quarters.label(1) == "Q2"
        with pytest.raises(DomainError):
            Hierarchy("quarter", ((0, 2), (3, 5)), ("Q1",))

    def test_bucket_of(self):
        weeks = uniform_hierarchy("week", 30, 7)
        assert weeks.bucket_of(0) == 0
        assert weeks.bucket_of(13) == 1
        assert weeks.bucket_of(29) == 4
        with pytest.raises(DomainError):
            weeks.bucket_of(30)


class TestDimension:
    def test_builtin_levels(self):
        dim = Dimension("day", 10)
        assert len(dim.level("detail")) == 10
        assert len(dim.level("all")) == 1
        with pytest.raises(DomainError):
            dim.level("week")

    def test_level_size_must_match(self):
        with pytest.raises(DomainError):
            Dimension("day", 10, {"week": uniform_hierarchy("week", 14, 7)})

    def test_with_level(self):
        dim = Dimension("day", 14).with_level(uniform_hierarchy("week", 14, 7))
        assert len(dim.level("week")) == 2


@pytest.fixture
def sales_view():
    # 12 days x 4 stores x 6 products
    cube = EvolvingDataCube((4, 6), num_times=12)
    rng = np.random.default_rng(90)
    dense = np.zeros((12, 4, 6), dtype=np.int64)
    for day in range(12):
        for _ in range(8):
            store = int(rng.integers(0, 4))
            product = int(rng.integers(0, 6))
            amount = int(rng.integers(1, 50))
            cube.update((day, store, product), amount)
            dense[day, store, product] += amount
    day = Dimension("day", 12).with_level(uniform_hierarchy("week", 12, 4))
    store = Dimension("store", 4).with_level(
        Hierarchy("region", ((0, 1), (2, 3)), ("north", "south"))
    )
    product = Dimension("product", 6).with_level(
        uniform_hierarchy("category", 6, 3)
    )
    return CubeView(cube, [day, store, product]), dense


class TestCubeView:
    def test_duplicate_names_rejected(self):
        cube = EvolvingDataCube((4,))
        with pytest.raises(DomainError):
            CubeView(cube, [Dimension("x", 10), Dimension("x", 4)])

    def test_aggregate_named_ranges(self, sales_view):
        view, dense = sales_view
        assert view.aggregate() == dense.sum()
        assert view.aggregate(day=(0, 3)) == dense[:4].sum()
        assert view.aggregate(store=2) == dense[:, 2].sum()
        assert view.aggregate(day=(4, 7), product=(0, 2)) == dense[4:8, :, :3].sum()
        with pytest.raises(DomainError):
            view.aggregate(color=(0, 1))

    def test_rollup_week_by_region(self, sales_view):
        view, dense = sales_view
        result = view.rollup({"day": "week", "store": "region"})
        assert result.values.shape == (3, 2, 1)
        for week in range(3):
            for region, stores in enumerate([slice(0, 2), slice(2, 4)]):
                expected = dense[week * 4 : week * 4 + 4, stores].sum()
                assert result.cell(week, region, 0) == expected

    def test_rollup_detail_matches_dense(self, sales_view):
        view, dense = sales_view
        result = view.rollup({"store": "detail", "product": "detail"})
        assert result.values.shape == (1, 4, 6)
        assert (result.values[0] == dense.sum(axis=0)).all()

    def test_rollup_rows_have_labels(self, sales_view):
        view, _dense = sales_view
        result = view.rollup({"store": "region"})
        rows = list(result.to_rows())
        assert len(rows) == 2
        assert rows[0][1] == "north"

    def test_drill_down_fixed_dimension(self, sales_view):
        view, dense = sales_view
        result = view.drill_down(
            {"day": "week"}, into="day", finer_level="detail", store=1
        )
        assert result.values.shape == (12, 1, 1)
        for day in range(12):
            assert result.cell(day, 0, 0) == dense[day, 1].sum()

    def test_data_cube_operator(self, sales_view):
        view, dense = sales_view
        cube = view.data_cube(levels={"day": "week", "product": "category"})
        assert len(cube) == 8  # 2^3 group-bys
        assert cube[()].values.shape == (1, 1, 1)
        assert cube[()].cell(0, 0, 0) == dense.sum()
        by_store = cube[("store",)]
        assert by_store.values.shape == (1, 4, 1)
        assert by_store.cell(0, 3, 0) == dense[:, 3].sum()
        full = cube[("day", "store", "product")]
        assert full.values.shape == (3, 4, 2)
        assert full.cell(1, 2, 0) == dense[4:8, 2, :3].sum()

    def test_rollup_unknown_dimension(self, sales_view):
        view, _dense = sales_view
        with pytest.raises(DomainError):
            view.rollup({"color": "detail"})
        with pytest.raises(DomainError):
            view.drill_down({}, into="color", finer_level="detail")
