"""Tests for the complete in-memory Evolving Data Cube."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AppendOrderError, DomainError
from repro.core.types import Box
from repro.ecube.ecube import EvolvingDataCube
from repro.metrics import CostCounter

from tests.conftest import brute_box_sum, random_box


def build_reference(shape, updates):
    dense = np.zeros(shape, dtype=np.int64)
    for point, delta in updates:
        dense[point] += delta
    return dense


def random_append_stream(rng, shape, count):
    """A random append-only stream over a cube of the given shape."""
    times = np.sort(rng.integers(0, shape[0], size=count))
    updates = []
    for t in times:
        cell = tuple(int(rng.integers(0, n)) for n in shape[1:])
        updates.append(((int(t),) + cell, int(rng.integers(-5, 9))))
    return updates


class TestConstruction:
    def test_invalid_slice_shape(self):
        with pytest.raises(DomainError):
            EvolvingDataCube((0, 4))

    def test_invalid_min_density(self):
        with pytest.raises(DomainError):
            EvolvingDataCube((4,), min_density=0)

    def test_empty_cube_queries_zero(self):
        cube = EvolvingDataCube((4, 4))
        assert cube.query(Box((0, 0, 0), (9, 3, 3))) == 0
        assert cube.total() == 0
        assert cube.latest_time is None


class TestAppendDiscipline:
    def test_time_must_not_regress(self):
        cube = EvolvingDataCube((4,))
        cube.update((5, 2), 1)
        cube.update((5, 3), 1)  # same time fine
        cube.update((9, 0), 1)
        with pytest.raises(AppendOrderError):
            cube.update((7, 0), 1)

    def test_cell_bounds_checked(self):
        cube = EvolvingDataCube((4,))
        with pytest.raises(DomainError):
            cube.update((0, 4), 1)

    def test_time_domain_checked_when_declared(self):
        cube = EvolvingDataCube((4,), num_times=10)
        with pytest.raises(DomainError):
            cube.update((10, 0), 1)

    def test_point_arity_checked(self):
        cube = EvolvingDataCube((4, 4))
        with pytest.raises(DomainError):
            cube.update((0, 1), 1)
        with pytest.raises(DomainError):
            cube.query(Box((0, 0), (1, 1)))


class TestCorrectness:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_streams_random_queries(self, data):
        ndim = data.draw(st.integers(2, 4))
        shape = tuple(data.draw(st.integers(2, 8)) for _ in range(ndim))
        count = data.draw(st.integers(1, 60))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        updates = random_append_stream(rng, shape, count)
        cube = EvolvingDataCube(shape[1:], num_times=shape[0])
        dense = build_reference(shape, updates)
        for point, delta in updates:
            cube.update(point, delta)
        for _ in range(10):
            box = random_box(rng, shape)
            assert cube.query(box) == brute_box_sum(dense, box)

    def test_queries_interleaved_with_updates(self):
        rng = np.random.default_rng(100)
        shape = (20, 8, 8)
        updates = random_append_stream(rng, shape, 300)
        cube = EvolvingDataCube(shape[1:], num_times=shape[0])
        dense = np.zeros(shape, dtype=np.int64)
        for index, (point, delta) in enumerate(updates):
            cube.update(point, delta)
            dense[point] += delta
            if index % 7 == 0:
                box = random_box(rng, shape)
                assert cube.query(box) == brute_box_sum(dense, box)

    def test_repeated_queries_stable_under_conversion(self):
        rng = np.random.default_rng(200)
        shape = (16, 16, 16)
        updates = random_append_stream(rng, shape, 400)
        cube = EvolvingDataCube(shape[1:], num_times=shape[0])
        dense = build_reference(shape, updates)
        for point, delta in updates:
            cube.update(point, delta)
        boxes = [random_box(rng, shape) for _ in range(30)]
        expected = [brute_box_sum(dense, box) for box in boxes]
        for _ in range(3):  # conversion progresses between rounds
            for box, want in zip(boxes, expected):
                assert cube.query(box) == want

    def test_sparse_occurring_times(self):
        cube = EvolvingDataCube((4,), num_times=1000)
        cube.update((10, 1), 5)
        cube.update((500, 2), 7)
        cube.update((999, 3), 9)
        assert cube.query(Box((0, 0), (9, 3))) == 0
        assert cube.query(Box((0, 0), (10, 3))) == 5
        assert cube.query(Box((11, 0), (499, 3))) == 0
        assert cube.query(Box((10, 0), (500, 3))) == 12
        assert cube.query(Box((501, 0), (999, 3))) == 9
        assert cube.occurring_times() == (10, 500, 999)

    def test_updates_after_queries_still_correct(self):
        # queries convert historic cells; later appends must not corrupt
        rng = np.random.default_rng(300)
        shape = (12, 8)
        cube = EvolvingDataCube((8,), num_times=12)
        dense = np.zeros(shape, dtype=np.int64)
        for t in range(12):
            for _ in range(6):
                x = int(rng.integers(0, 8))
                delta = int(rng.integers(1, 5))
                cube.update((t, x), delta)
                dense[t, x] += delta
            for _ in range(4):
                box = random_box(rng, shape)
                assert cube.query(box) == brute_box_sum(dense, box)

    def test_total(self):
        cube = EvolvingDataCube((4, 4))
        cube.update((0, 1, 1), 5)
        cube.update((3, 2, 2), 7)
        assert cube.total() == 12


class TestTimeSemantics:
    def test_upper_bound_uses_greatest_occurring_at_or_below(self):
        # Section 2.2 semantics (the Section 2.3 prose is inconsistent;
        # see the docstring of _prefix_time_query).
        cube = EvolvingDataCube((2,))
        cube.update((5, 0), 3)
        cube.update((8, 0), 4)
        # query up to time 7 must NOT include the value at time 8
        assert cube.query(Box((0, 0), (7, 1))) == 3
        assert cube.query(Box((6, 0), (7, 1))) == 0

    def test_lower_bound_strictly_before(self):
        cube = EvolvingDataCube((2,))
        cube.update((5, 0), 3)
        cube.update((8, 0), 4)
        assert cube.query(Box((5, 0), (8, 1))) == 7
        assert cube.query(Box((6, 0), (8, 1))) == 4


class TestCostBehaviour:
    def test_update_cost_bounded(self):
        counter = CostCounter()
        cube = EvolvingDataCube((32, 32), counter=counter, copy_budget=0)
        rng = np.random.default_rng(7)
        worst = 2 * cube.engine.worst_case_update_cells()
        for t in range(20):
            before = counter.snapshot()
            cube.update((t, int(rng.integers(0, 32)), int(rng.integers(0, 32))), 1)
            delta = counter.snapshot() - before
            # forced copies add to this; with budget 0 and one update per
            # slice, each update forces copies for its own cells only
            assert delta.cost_without_copy <= worst + 1

    def test_copy_cost_tagged_separately(self):
        counter = CostCounter()
        cube = EvolvingDataCube((8, 8), counter=counter)
        for t in range(10):
            cube.update((t, t % 8, (t * 3) % 8), 2)
        snap = counter.snapshot()
        assert snap.copy_cell_writes > 0
        assert snap.cost_without_copy < snap.cell_accesses

    def test_incomplete_instances_bounded_with_default_budget(self):
        rng = np.random.default_rng(11)
        cube = EvolvingDataCube((16, 16), num_times=64)
        worst_seen = 0
        for t in range(64):
            for _ in range(12):
                cube.update(
                    (t, int(rng.integers(0, 16)), int(rng.integers(0, 16))), 1
                )
                worst_seen = max(worst_seen, cube.incomplete_historic_instances())
        assert worst_seen <= 3

    def test_zero_budget_lags_but_stays_correct(self):
        rng = np.random.default_rng(12)
        shape = (32, 8)
        cube = EvolvingDataCube((8,), num_times=32, copy_budget=0)
        dense = np.zeros(shape, dtype=np.int64)
        for t in range(32):
            x = int(rng.integers(0, 8))
            cube.update((t, x), 1)
            dense[t, x] += 1
        assert cube.incomplete_historic_instances() > 0
        for _ in range(20):
            box = random_box(rng, shape)
            assert cube.query(box) == brute_box_sum(dense, box)

    def test_query_cost_converges_on_repeats(self):
        rng = np.random.default_rng(13)
        shape = (8, 32, 32)
        counter = CostCounter()
        cube = EvolvingDataCube((32, 32), num_times=8, counter=counter)
        for point, delta in random_append_stream(rng, shape, 200):
            cube.update(point, delta)
        box = Box((0, 3, 3), (6, 29, 30))
        counter.reset()
        cube.query(box)
        first = counter.cell_reads
        counter.reset()
        cube.query(box)
        second = counter.cell_reads
        assert second < first
        # two instances x 2^(d-1) corners, one read each once converged
        assert second <= 2 * 4
