"""Tests for the occurring-time directory."""

from __future__ import annotations

import bisect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.directory import TimeDirectory
from repro.core.errors import AppendOrderError, EmptyStructureError


class TestAppendDiscipline:
    def test_appends_must_be_strictly_increasing(self):
        directory: TimeDirectory[str] = TimeDirectory()
        directory.append(3, "a")
        with pytest.raises(AppendOrderError):
            directory.append(3, "b")
        with pytest.raises(AppendOrderError):
            directory.append(1, "c")

    def test_empty_directory_properties(self):
        directory: TimeDirectory[str] = TimeDirectory()
        assert len(directory) == 0
        assert not directory
        with pytest.raises(EmptyStructureError):
            _ = directory.latest
        with pytest.raises(EmptyStructureError):
            _ = directory.latest_time


class TestLookups:
    def test_floor_semantics(self):
        directory: TimeDirectory[str] = TimeDirectory()
        for time, payload in [(2, "a"), (5, "b"), (9, "c")]:
            directory.append(time, payload)
        assert directory.floor(1) is None
        assert directory.floor(2) == (2, "a")
        assert directory.floor(4) == (2, "a")
        assert directory.floor(5) == (5, "b")
        assert directory.floor(100) == (9, "c")

    def test_strictly_before(self):
        directory: TimeDirectory[str] = TimeDirectory()
        directory.append(2, "a")
        directory.append(5, "b")
        assert directory.strictly_before(2) is None
        assert directory.strictly_before(3) == (2, "a")
        assert directory.strictly_before(5) == (2, "a")
        assert directory.strictly_before(6) == (5, "b")

    def test_latest_pointer_constant_time(self):
        directory: TimeDirectory[int] = TimeDirectory()
        directory.append(1, 10)
        directory.append(4, 40)
        before = directory.comparisons
        assert directory.latest == 40
        assert directory.latest_time == 4
        assert directory.comparisons == before  # no search involved

    def test_replace_latest(self):
        directory: TimeDirectory[int] = TimeDirectory()
        directory.append(1, 10)
        directory.replace_latest(11)
        assert directory.latest == 11

    def test_payload_at_time_exact(self):
        directory: TimeDirectory[str] = TimeDirectory()
        directory.append(2, "a")
        assert directory.payload_at_time(2) == "a"
        with pytest.raises(KeyError):
            directory.payload_at_time(3)

    @settings(max_examples=50, deadline=None)
    @given(
        times=st.lists(st.integers(0, 10_000), min_size=1, max_size=200, unique=True),
        probes=st.lists(st.integers(-5, 10_005), min_size=1, max_size=50),
    )
    def test_floor_matches_bisect_model(self, times, probes):
        times = sorted(times)
        directory: TimeDirectory[int] = TimeDirectory()
        for index, time in enumerate(times):
            directory.append(time, index)
        for probe in probes:
            position = bisect.bisect_right(times, probe) - 1
            expected = None if position < 0 else (times[position], position)
            assert directory.floor(probe) == expected


class TestLookupCost:
    def test_comparisons_logarithmic(self):
        directory: TimeDirectory[int] = TimeDirectory()
        n = 4096
        for time in range(n):
            directory.append(time, time)
        directory.comparisons = 0
        directory.lookups = 0
        rng = np.random.default_rng(0)
        for probe in rng.integers(0, n, size=100):
            directory.floor(int(probe))
        assert directory.lookups == 100
        assert directory.comparisons / 100 <= np.log2(n) + 1
