"""Tests for the eCube slice engine (lazy DDC-to-PS conversion)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError
from repro.core.types import Box
from repro.ecube.slices import ECubeSliceEngine
from repro.preagg.ddc import DDCTechnique

from tests.conftest import brute_box_sum, random_box


class _SliceHarness:
    """A standalone eCube slice over a raw array, for engine testing."""

    def __init__(self, raw: np.ndarray) -> None:
        self.engine = ECubeSliceEngine(raw.shape)
        values = raw.astype(np.int64)
        for axis, technique in enumerate(self.engine.techniques):
            values = technique.aggregate(values, axis=axis)
        self.values = values
        self.flags = np.zeros(raw.shape, dtype=bool)
        self.reads = 0
        self.marks = 0

    def read(self, cell):
        self.reads += 1
        return int(self.values[cell]), bool(self.flags[cell])

    def mark(self, cell, ps_value):
        self.marks += 1
        self.values[cell] = ps_value
        self.flags[cell] = True

    def prefix(self, corner, persist=True):
        return self.engine.prefix(
            corner, self.read, self.mark if persist else None
        )

    def query(self, box, persist=True):
        return self.engine.range_query(
            box, self.read, self.mark if persist else None
        )


class TestPaperWorkedExample:
    """Figure 6: the 8x8 all-ones slice and PS(2, 6)."""

    def test_ps_2_6_equals_21(self):
        harness = _SliceHarness(np.ones((8, 8), dtype=np.int64))
        assert harness.prefix((2, 6)) == 21  # 3 rows x 7 columns of ones

    def test_conversion_marks_cells_as_ps(self):
        harness = _SliceHarness(np.ones((8, 8), dtype=np.int64))
        harness.prefix((2, 6))
        # the worked example converts (1,3), (1,5), (1,6), (2,3), (2,5), (2,6)
        for cell in [(1, 3), (1, 5), (1, 6), (2, 3), (2, 5), (2, 6)]:
            assert harness.flags[cell], cell
        assert harness.values[2, 6] == 21
        assert harness.values[2, 5] == 18
        assert harness.values[1, 6] == 14
        assert harness.values[1, 5] == 12
        assert harness.values[1, 3] == 8
        assert harness.values[2, 3] == 12

    def test_subsequent_query_hits_converted_value(self):
        harness = _SliceHarness(np.ones((8, 8), dtype=np.int64))
        harness.prefix((2, 6))
        harness.reads = 0
        # q((0,0),(2,3)) "returns after the first cell access"
        assert harness.prefix((2, 3)) == 12
        assert harness.reads == 1


class TestPrefixCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_prefixes_match_numpy(self, data):
        ndim = data.draw(st.integers(1, 3))
        shape = tuple(data.draw(st.integers(1, 9)) for _ in range(ndim))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        raw = rng.integers(-9, 10, size=shape)
        harness = _SliceHarness(raw)
        for _ in range(6):
            corner = tuple(int(rng.integers(-1, n)) for n in shape)
            expected = int(
                raw[tuple(slice(0, c + 1) for c in corner)].sum()
            )
            assert harness.prefix(corner) == expected

    def test_prefix_empty_corner_is_zero(self):
        harness = _SliceHarness(np.ones((4, 4), dtype=np.int64))
        assert harness.prefix((-1, 3)) == 0
        assert harness.prefix((3, -1)) == 0

    def test_prefix_out_of_domain(self):
        harness = _SliceHarness(np.ones((4, 4), dtype=np.int64))
        with pytest.raises(DomainError):
            harness.prefix((4, 0))

    def test_conversion_preserves_later_answers(self):
        rng = np.random.default_rng(8)
        raw = rng.integers(0, 10, size=(16, 16))
        harness = _SliceHarness(raw)
        corners = [
            tuple(int(rng.integers(0, 16)) for _ in range(2)) for _ in range(60)
        ]
        expected = {
            corner: int(raw[: corner[0] + 1, : corner[1] + 1].sum())
            for corner in corners
        }
        # interleave: every corner queried twice in scrambled order
        for corner in corners + corners[::-1]:
            assert harness.prefix(corner) == expected[corner]


class TestRangeQueries:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_range_matches_numpy_as_slice_converts(self, data):
        shape = tuple(data.draw(st.integers(2, 8)) for _ in range(2))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        raw = rng.integers(-5, 15, size=shape)
        harness = _SliceHarness(raw)
        for _ in range(10):
            box = random_box(rng, shape)
            assert harness.query(box) == brute_box_sum(raw, box)

    def test_without_persist_recursion_memoizes_per_query(self):
        raw = np.ones((16, 16), dtype=np.int64)
        harness = _SliceHarness(raw)
        value = harness.query(Box((3, 3), (12, 12)), persist=False)
        assert value == 100
        assert not harness.flags.any()
        assert harness.marks == 0
        # repeated identical query costs the same (nothing persisted)
        reads_first = harness.reads
        harness.reads = 0
        assert harness.query(Box((3, 3), (12, 12)), persist=False) == 100
        assert harness.reads == reads_first


class TestCostConvergence:
    def test_query_cost_decreases_to_ps_bound(self):
        rng = np.random.default_rng(17)
        raw = rng.integers(0, 5, size=(64, 64))
        harness = _SliceHarness(raw)
        box = Box((5, 7), (50, 61))
        harness.reads = 0
        harness.query(box)
        first = harness.reads
        harness.reads = 0
        harness.query(box)
        second = harness.reads
        assert second <= first
        assert second <= 2 ** 2  # fully converged: <= 2^(d) prefix reads

    def test_worst_case_never_exceeds_ddc_bound(self):
        rng = np.random.default_rng(18)
        raw = rng.integers(0, 5, size=(32, 32))
        harness = _SliceHarness(raw)
        bound = 4 * (32).bit_length() ** 2 * 4  # loose (2 log N)^2 x corners
        for _ in range(30):
            box = random_box(rng, (32, 32))
            harness.reads = 0
            harness.query(box)
            assert harness.reads <= bound


class TestUpdateCells:
    def test_cross_product_of_bit_chains(self):
        engine = ECubeSliceEngine((8, 8))
        cells = engine.update_cells((0, 0))
        d = DDCTechnique(8)
        expected = [
            (a, b)
            for a in [i for i, _ in d.update_terms(0)]
            for b in [i for i, _ in d.update_terms(0)]
        ]
        assert sorted(cells) == sorted(expected)

    def test_bound(self):
        engine = ECubeSliceEngine((16, 16))
        for x in range(16):
            for y in range(16):
                assert len(engine.update_cells((x, y))) <= engine.worst_case_update_cells()

    def test_arity_checked(self):
        engine = ECubeSliceEngine((8, 8))
        with pytest.raises(DomainError):
            engine.update_cells((1,))

    def test_empty_shape_rejected(self):
        with pytest.raises(DomainError):
            ECubeSliceEngine(())
