"""Checkpoints: manifest publication, compaction, multi-backend snapshots.

Also covers the serialize-layer companions: ``save_kernel`` /
``load_kernel`` round-trip every backend, ``save_cube`` refuses
non-dense cubes with a clear :class:`StorageError`, and archives written
by a future format version are refused with an upgrade hint.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.errors import RecoveryError, StorageError
from repro.core.types import Box
from repro.durability import DurableCube
from repro.durability.checkpoint import (
    MANIFEST_NAME,
    CheckpointManifest,
    publish_manifest,
    read_manifest,
)
from repro.ecube.disk import DiskEvolvingDataCube
from repro.ecube.sparse import SparseEvolvingDataCube
from repro.storage.serialize import (
    dumps_cube,
    load_cube,
    load_kernel,
    save_cube,
    save_kernel,
)

from tests.conftest import brute_box_sum, random_box

BACKENDS = ["dense", "paged", "sparse"]
SHAPE = (24, 8, 8)


def _fill(target, rng, count=60, low=0, high=SHAPE[0]):
    """Apply a deterministic in-order stream to a cube-like front.

    ``low``/``high`` bound the drawn times so successive fills of an
    unbuffered (strictly append-only) cube can use disjoint windows.
    """
    dense = np.zeros(SHAPE, dtype=np.int64)
    times = np.sort(rng.integers(low, high, size=count))
    for t in times:
        point = (int(t), int(rng.integers(0, 8)), int(rng.integers(0, 8)))
        delta = int(rng.integers(-3, 9))
        target.update(point, delta)
        dense[point] += delta
    return dense


class TestManifest:
    def test_absent_directory_reads_as_none(self, tmp_path):
        assert read_manifest(tmp_path) is None
        assert read_manifest(tmp_path / "nowhere") is None

    def test_round_trip(self, tmp_path):
        manifest = CheckpointManifest(
            checkpoint_id=3,
            covered_lsn=41,
            checkpoint_file="checkpoint-00000003.npz",
            live_segments=["wal-00000004.log"],
            config={"backend": "sparse", "buffered": True},
        )
        publish_manifest(tmp_path, manifest)
        assert read_manifest(tmp_path) == manifest
        # publication is by rename: no temp file survives
        assert [p.name for p in tmp_path.iterdir()] == [MANIFEST_NAME]

    def test_damaged_manifest_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{ not json")
        with pytest.raises(RecoveryError):
            read_manifest(tmp_path)

    def test_future_manifest_version_refused(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps(
                {"checkpoint_id": 1, "covered_lsn": 0, "manifest_version": 99}
            )
        )
        with pytest.raises(RecoveryError, match="upgrade"):
            read_manifest(tmp_path)


class TestCheckpointCycle:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("buffered", [True, False])
    def test_checkpoint_then_tail_recovers(self, tmp_path, backend, buffered):
        rng = np.random.default_rng(7)
        cube = DurableCube(
            SHAPE[1:],
            tmp_path,
            backend=backend,
            buffered=buffered,
            num_times=SHAPE[0],
            fsync="off",
        )
        dense = _fill(cube, rng, count=50, high=12)
        manifest = cube.checkpoint()
        assert manifest.checkpoint_file is not None
        dense += _fill(cube, rng, count=25, low=12)
        cube.close()

        recovered = DurableCube.recover(tmp_path)
        assert recovered.recovery_info["checkpoint_id"] == 1
        assert recovered.recovery_info["replayed_records"] == 25
        assert recovered.total() == int(dense.sum())
        for _ in range(20):
            box = random_box(rng, SHAPE)
            assert recovered.query(box) == brute_box_sum(dense, box)
        recovered.close()

    def test_compaction_drops_covered_segments(self, tmp_path):
        rng = np.random.default_rng(8)
        cube = DurableCube(
            SHAPE[1:], tmp_path, num_times=SHAPE[0], fsync="off",
            segment_bytes=256,
        )
        _fill(cube, rng, count=40)
        segments_before = cube.wal.segments()
        assert len(segments_before) > 1
        manifest = cube.checkpoint()
        # everything up to the marker is covered: only the fresh segment
        # (rolled just after the marker) remains, and the manifest agrees
        assert cube.wal.segments() == manifest.live_segments
        assert len(manifest.live_segments) == 1
        assert not set(segments_before) & set(manifest.live_segments)
        cube.close()

    def test_second_checkpoint_removes_the_first_archive(self, tmp_path):
        rng = np.random.default_rng(9)
        with DurableCube(
            SHAPE[1:], tmp_path, num_times=SHAPE[0], fsync="off"
        ) as cube:
            _fill(cube, rng, count=20)
            first = cube.checkpoint()
            _fill(cube, rng, count=20)
            second = cube.checkpoint()
            archives = sorted(p.name for p in tmp_path.glob("checkpoint-*.npz"))
            assert archives == [second.checkpoint_file]
            assert first.checkpoint_file not in archives

    def test_crash_mid_checkpoint_keeps_old_manifest(self, tmp_path):
        rng = np.random.default_rng(10)
        cube = DurableCube(
            SHAPE[1:], tmp_path, num_times=SHAPE[0], fsync="off"
        )
        dense = _fill(cube, rng, count=30)
        cube.checkpoint()
        dense += _fill(cube, rng, count=15)
        cube.close()
        # a crash between archive write and manifest publication leaves a
        # temp archive behind; recovery must use the published manifest
        (tmp_path / "checkpoint-00000002.npz.tmp").write_bytes(b"partial")
        recovered = DurableCube.recover(tmp_path)
        assert recovered._manifest.checkpoint_id == 1
        assert recovered.total() == int(dense.sum())
        recovered.close()

    def test_recover_without_manifest_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="manifest"):
            DurableCube.recover(tmp_path / "empty")

    def test_missing_checkpoint_archive_raises(self, tmp_path):
        with DurableCube((4, 4), tmp_path, fsync="off") as cube:
            cube.update((0, 1, 2), 5)
            manifest = cube.checkpoint()
        (tmp_path / manifest.checkpoint_file).unlink()
        with pytest.raises(RecoveryError, match="missing checkpoint"):
            DurableCube.recover(tmp_path)

    def test_reinitializing_existing_directory_rejected(self, tmp_path):
        DurableCube((4, 4), tmp_path, fsync="off").close()
        with pytest.raises(StorageError, match="recover"):
            DurableCube((4, 4), tmp_path, fsync="off")


class TestKernelSerialize:
    def _build(self, backend, rng):
        if backend == "paged":
            cube = DiskEvolvingDataCube(SHAPE[1:], num_times=SHAPE[0])
        elif backend == "sparse":
            cube = SparseEvolvingDataCube(SHAPE[1:], num_times=SHAPE[0])
        else:
            from repro.ecube.ecube import EvolvingDataCube

            cube = EvolvingDataCube(SHAPE[1:], num_times=SHAPE[0])
        dense = _fill(cube, rng, count=60)
        return cube, dense

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_save_kernel_round_trip(self, tmp_path, backend):
        rng = np.random.default_rng(11)
        cube, dense = self._build(backend, rng)
        # convert a few regions so lazy-copy progress is non-trivial
        for _ in range(8):
            cube.query(random_box(rng, SHAPE))
        path = tmp_path / "kernel.npz"
        save_kernel(cube, path)
        restored = load_kernel(path)
        assert restored.store.kind == backend
        assert restored.updates_applied == cube.updates_applied
        assert (
            restored.incomplete_historic_instances()
            == cube.incomplete_historic_instances()
        )
        for _ in range(20):
            box = random_box(rng, SHAPE)
            assert restored.query(box) == brute_box_sum(dense, box)

    @pytest.mark.parametrize("backend", ["paged", "sparse"])
    def test_save_cube_refuses_non_dense(self, tmp_path, backend):
        rng = np.random.default_rng(12)
        cube, _ = self._build(backend, rng)
        with pytest.raises(StorageError, match="save_kernel"):
            save_cube(cube, tmp_path / "nope.npz")
        with pytest.raises(StorageError, match="save_kernel"):
            dumps_cube(cube)

    @pytest.mark.parametrize("backend", ["paged", "sparse"])
    def test_load_cube_points_at_load_kernel(self, tmp_path, backend):
        rng = np.random.default_rng(13)
        cube, _ = self._build(backend, rng)
        path = tmp_path / "kernel.npz"
        save_kernel(cube, path)
        with pytest.raises(StorageError, match="load_kernel"):
            load_cube(path)

    def test_future_archive_version_refused(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez_compressed(path, format_version=np.array([999]))
        with pytest.raises(StorageError, match="upgrade"):
            load_kernel(path)
        with pytest.raises(StorageError, match="upgrade"):
            load_cube(path)

    def test_version_one_dense_archive_still_loads(self, tmp_path):
        # v1 archives carry no ``backend`` key; simulate one by rewriting
        rng = np.random.default_rng(14)
        cube, dense = self._build("dense", rng)
        path = tmp_path / "v1.npz"
        save_kernel(cube, path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        del arrays["backend"]
        arrays["format_version"] = np.array([1])
        np.savez_compressed(path, **arrays)
        restored = load_cube(path)
        box = Box((0, 0, 0), (SHAPE[0] - 1, 7, 7))
        assert restored.query(box) == int(dense.sum())
