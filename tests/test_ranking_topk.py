"""Differential suite for temporal top-k ranking.

``topk_many`` must be *bit-identical* to the brute-force NumPy oracle --
same cells, same values, same order -- on every front (all three storage
backends, bare and ``G_d``-buffered, and the sharded cube), including
ties, ``k`` larger than the live cell count, degenerate intervals and
out-of-order updates arriving mid-stream.  A separate deterministic
suite pins the pruning economics: on skewed workloads the threshold
path must never charge more metered cell accesses than the dense gather
it replaces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError
from repro.core.types import Box
from repro.ecube.buffered import BufferedEvolvingDataCube
from repro.ecube.disk import DiskEvolvingDataCube
from repro.ecube.ecube import EvolvingDataCube
from repro.ecube.sparse import SparseEvolvingDataCube
from repro.metrics import CostCounter
from repro.ranking import TopKEngine, TopKStats, brute_topk
from repro.sharding import ShardedCube

BACKENDS = ("dense", "paged", "sparse")


def _bare_cube(backend, shape, counter=None):
    if backend == "dense":
        return EvolvingDataCube(shape, counter=counter)
    if backend == "paged":
        return DiskEvolvingDataCube(shape, counter=counter)
    return SparseEvolvingDataCube(shape, counter=counter)


def _dense_oracle(shape, num_times, updates):
    dense = np.zeros((num_times, *shape), dtype=np.int64)
    for point, delta in updates:
        dense[tuple(point)] += delta
    return dense


@st.composite
def topk_workloads(draw, signed=False):
    """A small cube stream plus a batch of (t1, t2, k) queries.

    Update times are drawn freely, so the stream contains out-of-order
    points mid-stream; deltas are drawn from a narrow band to force
    value ties.  Queries include inverted (t2 < t1) intervals,
    single-instant intervals and k beyond the live cell count.
    """
    ndim = draw(st.integers(1, 2))
    shape = tuple(draw(st.integers(2, 5)) for _ in range(ndim))
    num_times = draw(st.integers(1, 10))
    low_delta = -4 if signed else 1
    n_updates = draw(st.integers(0, 30))
    updates = []
    for _ in range(n_updates):
        point = (draw(st.integers(0, num_times - 1)),) + tuple(
            draw(st.integers(0, n - 1)) for n in shape
        )
        delta = draw(
            st.integers(low_delta, 4).filter(lambda d: d != 0)
        )
        updates.append((point, delta))
    cells = int(np.prod(shape))
    queries = draw(
        st.lists(
            st.tuples(
                st.integers(-2, num_times + 2),
                st.integers(-2, num_times + 2),
                st.integers(0, cells + 3),
            ),
            min_size=1,
            max_size=4,
        )
    )
    return shape, num_times, updates, queries


class TestDifferentialOracle:
    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=30)
    @given(workload=topk_workloads())
    def test_buffered_fronts_match_oracle(self, backend, workload):
        shape, num_times, updates, queries = workload
        front = BufferedEvolvingDataCube(shape, backend=backend)
        for point, delta in updates:  # out-of-order points go through G_d
            front.update(point, delta)
        dense = _dense_oracle(shape, num_times, updates)
        engine = TopKEngine(front, nonnegative=True)
        got = engine.topk_many(queries)
        want = [brute_topk(dense, t1, t2, k) for t1, t2, k in queries]
        assert got == want

    @pytest.mark.parametrize("backend", BACKENDS)
    @settings(max_examples=20)
    @given(workload=topk_workloads())
    def test_bare_kernels_match_oracle(self, backend, workload):
        shape, num_times, updates, queries = workload
        front = _bare_cube(backend, shape)
        for point, delta in sorted(updates, key=lambda u: u[0][0]):
            front.update(point, delta)  # bare kernels are append-only
        dense = _dense_oracle(shape, num_times, updates)
        engine = TopKEngine(front, nonnegative=True)
        assert engine.topk_many(queries) == [
            brute_topk(dense, t1, t2, k) for t1, t2, k in queries
        ]

    @settings(max_examples=15)
    @given(workload=topk_workloads())
    def test_sharded_cube_matches_oracle(self, workload):
        shape, num_times, updates, queries = workload
        if len(shape) == 1 and shape[0] < 2:
            return
        cube = ShardedCube(shape, shards=2, processes=False, buffered=True)
        try:
            for point, delta in updates:
                cube.update(point, delta)
            dense = _dense_oracle(shape, num_times, updates)
            got = cube.topk_many(queries, nonnegative=True)
            assert got == [
                brute_topk(dense, t1, t2, k) for t1, t2, k in queries
            ]
        finally:
            cube.close()

    @settings(max_examples=20)
    @given(workload=topk_workloads(signed=True))
    def test_signed_workloads_run_exact_dense(self, workload):
        """Without the non-negativity declaration the engine must stay
        exact on signed deltas (negative cells rank below zeros)."""
        shape, num_times, updates, queries = workload
        front = BufferedEvolvingDataCube(shape)
        for point, delta in updates:
            front.update(point, delta)
        dense = _dense_oracle(shape, num_times, updates)
        engine = TopKEngine(front)  # nonnegative not declared
        assert engine.topk_many(queries) == [
            brute_topk(dense, t1, t2, k) for t1, t2, k in queries
        ]
        assert all(s.strategy == "dense" for s in engine.last_stats)


class TestEdgeSemantics:
    def test_exact_ties_break_lexicographically(self):
        front = BufferedEvolvingDataCube((3, 3))
        # four cells tie at 5; two more tie at 3
        for cell in [(0, 2), (1, 0), (2, 1), (2, 2)]:
            front.update((0, *cell), 5)
        for cell in [(0, 0), (1, 2)]:
            front.update((1, *cell), 3)
        engine = TopKEngine(front, nonnegative=True)
        assert engine.topk(0, 1, 5) == [
            ((0, 2), 5),
            ((1, 0), 5),
            ((2, 1), 5),
            ((2, 2), 5),
            ((0, 0), 3),
        ]

    def test_k_beyond_live_cells_zero_fills_in_lex_order(self):
        front = BufferedEvolvingDataCube((2, 2))
        front.update((0, 1, 0), 7)
        engine = TopKEngine(front, nonnegative=True)
        assert engine.topk(0, 0, 4) == [
            ((1, 0), 7),
            ((0, 0), 0),
            ((0, 1), 0),
            ((1, 1), 0),
        ]
        # k past the domain clamps to the cell count
        assert len(engine.topk(0, 0, 99)) == 4

    def test_degenerate_interval_is_all_zero(self):
        front = BufferedEvolvingDataCube((2, 2))
        front.update((3, 0, 0), 9)
        engine = TopKEngine(front, nonnegative=True)
        assert engine.topk(5, 2, 3) == [((0, 0), 0), ((0, 1), 0), ((1, 0), 0)]
        assert engine.topk(1, 1, 1) == [((0, 0), 0)]

    def test_k_zero_is_empty(self):
        front = BufferedEvolvingDataCube((2, 2))
        front.update((0, 0, 0), 1)
        engine = TopKEngine(front, nonnegative=True)
        assert engine.topk(0, 0, 0) == []

    def test_negative_marginal_falls_back_to_dense(self):
        """A caller wrongly declaring non-negativity still gets exact
        answers when a marginal disproves the declaration."""
        front = BufferedEvolvingDataCube((2, 2))
        front.update((0, 0, 0), 5)
        front.update((0, 0, 1), -9)  # makes marginal axis-0 row 0 negative
        front.drain(None)
        dense = _dense_oracle((2, 2), 1, [((0, 0, 0), 5), ((0, 0, 1), -9)])
        engine = TopKEngine(front, nonnegative=True)
        assert engine.topk(0, 0, 4) == brute_topk(dense, 0, 0, 4)
        assert engine.last_stats[0].strategy == "dense"

    def test_shape_inference_and_validation(self):
        front = BufferedEvolvingDataCube((2, 2))
        front.update((0, 1, 1), 3)

        class Wrapped:  # exposes the kernel only through .cube
            def __init__(self, inner):
                self.cube = inner.cube
                self.query_many = inner.query_many

        engine = TopKEngine(Wrapped(front), nonnegative=True)
        assert engine.slice_shape == (2, 2)
        assert engine.topk(0, 0, 1) == [((1, 1), 3)]
        with pytest.raises(DomainError):
            TopKEngine(front, slice_shape=())

    def test_pairwise_bound_is_exact_on_three_dim_domains(self):
        """ndim >= 3 engages the pairwise marginal tightening; results
        must stay bit-identical to the oracle."""
        rng = np.random.default_rng(7)
        shape = (6, 6, 3)
        num_times = 8
        updates = []
        for t in range(num_times):
            for _ in range(12):
                cell = (
                    int(rng.integers(0, 6)),
                    int(rng.integers(0, 6)),
                    int(rng.integers(0, 3)),
                )
                updates.append(((t, *cell), int(rng.integers(1, 9))))
        front = BufferedEvolvingDataCube(shape)
        for point, delta in updates:
            front.update(point, delta)
        dense = _dense_oracle(shape, num_times, updates)
        engine = TopKEngine(front, nonnegative=True)
        queries = [(0, num_times - 1, 3), (2, 5, 1)]
        assert engine.topk_many(queries) == [
            brute_topk(dense, *q) for q in queries
        ]
        for stats in engine.last_stats:
            assert stats.strategy == "prune"
            # more prefix boxes than the per-axis marginals alone: the
            # pairwise bound was engaged
            assert stats.marginal_boxes > sum(shape)

    def test_negative_pair_marginal_falls_back_to_dense(self):
        """A signed workload whose per-axis marginals are all
        non-negative can still be disproven by the pairwise marginal."""
        shape = (2, 2, 3)
        updates = [
            ((0, 0, 0, 0), -3),
            ((0, 0, 0, 1), 1),
            ((0, 0, 1, 0), 4),
            ((0, 1, 0, 0), 5),
            ((0, 1, 1, 2), 2),
        ]
        front = BufferedEvolvingDataCube(shape)
        for point, delta in updates:
            front.update(point, delta)
        front.drain(None)
        dense = _dense_oracle(shape, 1, updates)
        engine = TopKEngine(front, nonnegative=True)
        assert engine.topk(0, 0, 12) == brute_topk(dense, 0, 0, 12)
        (stats,) = engine.last_stats
        assert stats.strategy == "dense"
        assert stats.marginal_boxes > sum(shape)

    def test_stats_expose_pruning(self):
        front = BufferedEvolvingDataCube((6, 6))
        front.update((0, 2, 3), 100)
        front.update((0, 4, 1), 1)
        engine = TopKEngine(front, nonnegative=True)
        engine.topk(0, 0, 1)
        (stats,) = engine.last_stats
        assert isinstance(stats, TopKStats)
        assert stats.strategy == "prune"
        assert stats.materialized < stats.cells
        assert stats.pruned_cells == stats.cells - stats.materialized


class TestPruningCharges:
    """Threshold pruning must not cost more than the dense gather."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_prune_charges_at_most_dense(self, seed, backend):
        rng = np.random.default_rng(seed)
        shape = (8, 8)
        num_times = 24
        hot = [
            tuple(int(c) for c in rng.integers(0, 8, size=2))
            for _ in range(4)
        ]
        updates = []
        for t in range(num_times):
            for _ in range(6):
                cell = hot[int(rng.integers(0, len(hot)))]
                updates.append(((t, *cell), int(rng.integers(1, 9))))

        def charges(nonnegative):
            counter = CostCounter()
            front = BufferedEvolvingDataCube(
                shape, backend=backend, counter=counter
            )
            for point, delta in updates:
                front.update(point, delta)
            engine = TopKEngine(front, nonnegative=nonnegative)
            before = counter.snapshot()
            results = engine.topk_many(
                [(0, num_times - 1, 3), (4, 12, 5)], mode="metered"
            )
            return results, (counter.snapshot() - before).cell_accesses

        pruned_results, pruned_cost = charges(nonnegative=True)
        dense_results, dense_cost = charges(nonnegative=False)
        assert pruned_results == dense_results
        assert pruned_cost <= dense_cost

    def test_sharded_stats_report_pruning(self):
        cube = ShardedCube((8, 8), shards=2, processes=False, buffered=True)
        try:
            cube.update((0, 1, 1), 50)
            cube.update((0, 6, 6), 2)
            cube.topk_many([(0, 0, 1)], nonnegative=True)
            (stats,) = cube.router.last_topk_stats
            assert stats["strategy"] == "prune"
            assert stats["materialized"] < stats["cells"]
        finally:
            cube.close()
