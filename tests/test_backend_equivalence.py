"""Cross-backend equivalence: one kernel, three slice stores.

The dense, paged and sparse cubes are the same
:class:`~repro.ecube.kernel.CubeKernel` over different
:class:`~repro.ecube.stores.SliceStore` backends, so on a shared random
workload they must produce *identical query answers* and -- because
counted cell reads are structural (term-set walks and conversion
recursion depend only on the query history, never on where bytes live)
-- *identical counted cell accesses* for the metered query phase.  These
tests pin that equivalence, plus the uniform availability of the batch
engine, out-of-order corrections and data aging on every backend, and
drive each backend through a Hypothesis stateful machine against a
dense numpy model.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.errors import AgedOutError
from repro.core.types import Box
from repro.ecube.buffered import BufferedEvolvingDataCube
from repro.ecube.disk import DiskEvolvingDataCube
from repro.ecube.ecube import EvolvingDataCube
from repro.ecube.sparse import SparseEvolvingDataCube
from repro.metrics import CostCounter

from tests.conftest import brute_box_sum, random_box

BACKENDS = ("dense", "paged", "sparse")


def make_cube(backend, slice_shape, num_times=None):
    if backend == "dense":
        return EvolvingDataCube(
            slice_shape, num_times=num_times, counter=CostCounter()
        )
    if backend == "paged":
        # small pages so several pages per slice are exercised
        return DiskEvolvingDataCube(
            slice_shape, num_times=num_times, counter=CostCounter(),
            page_size=64,
        )
    if backend == "sparse":
        return SparseEvolvingDataCube(
            slice_shape, num_times=num_times, counter=CostCounter()
        )
    raise AssertionError(backend)


def random_append_stream(rng, shape, count):
    times = np.sort(rng.integers(0, shape[0], size=count))
    updates = []
    for t in times:
        cell = tuple(int(rng.integers(0, n)) for n in shape[1:])
        updates.append(((int(t),) + cell, int(rng.integers(-5, 9))))
    return updates


def dense_model(shape, updates):
    model = np.zeros(shape, dtype=np.int64)
    for point, delta in updates:
        model[point] += delta
    return model


class TestSharedWorkloadEquivalence:
    def test_identical_answers_and_query_cell_accesses(self, rng):
        shape = (8, 6, 5)
        updates = random_append_stream(rng, shape, 80)
        model = dense_model(shape, updates)
        cubes = {b: make_cube(b, shape[1:], shape[0]) for b in BACKENDS}
        for cube in cubes.values():
            for point, delta in updates:
                cube.update(point, delta)
        boxes = [random_box(rng, shape) for _ in range(25)]
        for cube in cubes.values():
            cube.counter.reset()
        for box in boxes:
            expected = brute_box_sum(model, box)
            deltas = {}
            for backend, cube in cubes.items():
                before = cube.counter.snapshot()
                assert cube.query(box) == expected
                deltas[backend] = cube.counter.snapshot() - before
            # counted cell accesses are storage-independent: the metered
            # walk touches the same logical cells on every backend
            reads = {b: d.cell_reads for b, d in deltas.items()}
            assert len(set(reads.values())) == 1, reads

    def test_fast_batch_matches_metered_on_every_backend(self, rng):
        shape = (7, 5, 4)
        updates = random_append_stream(rng, shape, 60)
        model = dense_model(shape, updates)
        boxes = [random_box(rng, shape) for _ in range(20)]
        expected = [brute_box_sum(model, box) for box in boxes]
        fast_answers = {}
        for backend in BACKENDS:
            metered = make_cube(backend, shape[1:], shape[0])
            fast = make_cube(backend, shape[1:], shape[0])
            for point, delta in updates:
                metered.update(point, delta)
                fast.update(point, delta)
            assert metered.query_many(boxes, mode="metered") == expected
            fast_answers[backend] = fast.query_many(boxes, mode="fast")
            assert fast_answers[backend] == expected
        assert len({tuple(a) for a in fast_answers.values()}) == 1

    def test_fast_update_many_matches_metered_stream(self, rng):
        shape = (6, 4, 4)
        updates = random_append_stream(rng, shape, 50)
        points = np.array([p for p, _ in updates], dtype=np.int64)
        deltas = np.array([d for _, d in updates], dtype=np.int64)
        boxes = [random_box(rng, shape) for _ in range(12)]
        for backend in BACKENDS:
            metered = make_cube(backend, shape[1:], shape[0])
            for point, delta in updates:
                metered.update(point, delta)
            fast = make_cube(backend, shape[1:], shape[0])
            fast.update_many(points, deltas, mode="fast")
            assert [fast.query(b) for b in boxes] == [
                metered.query(b) for b in boxes
            ]
            assert fast.total() == metered.total()
            fast.sync_copies()
            assert fast.incomplete_historic_instances() == 0


class TestOutOfOrderOnAllBackends:
    def test_corrections_and_splices_match_model(self, rng):
        shape = (10, 5, 4)
        # leave times 3 and 7 never-occurring so corrections must splice
        updates = [
            (p, d)
            for p, d in random_append_stream(rng, shape, 70)
            if p[0] not in (3, 7)
        ]
        model = dense_model(shape, updates)
        corrections = []
        latest = max(p[0] for p, _ in updates)
        for t in (3, 7, 1, latest - 1):
            if t < 0 or t >= latest:
                continue
            cell = tuple(int(rng.integers(0, n)) for n in shape[1:])
            corrections.append(((t,) + cell, int(rng.integers(1, 6))))
        assert corrections
        boxes = [random_box(rng, shape) for _ in range(20)]
        for point, delta in corrections:
            model[point] += delta
        for backend in BACKENDS:
            cube = make_cube(backend, shape[1:], shape[0])
            for point, delta in updates:
                cube.update(point, delta)
            cube.apply_out_of_order_many(
                [p for p, _ in corrections], [d for _, d in corrections]
            )
            for t, _ in ((3, None), (7, None)):
                assert t in cube.occurring_times()
            expected = [brute_box_sum(model, box) for box in boxes]
            assert [cube.query(b) for b in boxes] == expected
            assert cube.query_many(boxes, mode="fast") == expected

    def test_buffered_wrapper_over_every_backend(self, rng):
        shape = (8, 4, 4)
        stream = random_append_stream(rng, shape, 50)
        # scramble a middle segment so some arrivals are out of order
        segment = stream[10:30]
        rng.shuffle(segment)
        stream[10:30] = segment
        model = dense_model(shape, stream)
        boxes = [random_box(rng, shape) for _ in range(15)]
        expected = [brute_box_sum(model, box) for box in boxes]
        for backend in BACKENDS:
            cube = BufferedEvolvingDataCube(
                shape[1:], num_times=shape[0], counter=CostCounter(),
                backend=backend,
            )
            for point, delta in stream:
                cube.update(point, delta)
            assert cube.query_many(boxes, mode="fast") == expected
            assert cube.query_many(boxes, mode="metered") == expected
            applied, kept = cube.drain(None)
            assert kept == 0
            assert cube.buffered_updates == 0
            assert cube.query_many(boxes, mode="fast") == expected


class TestAgingOnAllBackends:
    def test_retire_before_behaves_identically(self, rng):
        shape = (10, 4, 4)
        updates = random_append_stream(rng, shape, 60)
        model = dense_model(shape, updates)
        retired_counts = {}
        for backend in BACKENDS:
            cube = make_cube(backend, shape[1:], shape[0])
            for point, delta in updates:
                cube.update(point, delta)
            latest = cube.latest_time
            boundary_time = latest - 2
            retired_counts[backend] = cube.retire_before(boundary_time)
            assert cube.retired_instances > 0
            # prefix queries from the beginning of time stay answerable
            prefix = Box((0, 0, 0), (latest, 3, 3))
            assert cube.query(prefix) == brute_box_sum(model, prefix)
            assert cube.query_many([prefix], mode="fast") == [
                brute_box_sum(model, prefix)
            ]
            # a lower bound inside the retired region is unanswerable
            retired_box = Box((1, 0, 0), (latest, 3, 3))
            if 0 <= cube.directory.floor_index(0) < cube.retired_instances:
                with pytest.raises(AgedOutError):
                    cube.query(retired_box)
                with pytest.raises(AgedOutError):
                    cube.query_many([retired_box], mode="fast")
            # corrections into the retired region stay unappliable
            with pytest.raises(AgedOutError):
                cube.apply_out_of_order(
                    (cube.occurring_times()[0], 0, 0), 1
                )
        assert len(set(retired_counts.values())) == 1, retired_counts


# -- stateful machines: every backend against a dense model --------------------

TIME_DOMAIN = 16
CELL_DOMAIN = 5


class BackendMachine(RuleBasedStateMachine):
    """Drives one backend through appends, corrections and queries."""

    backend = "dense"

    @initialize()
    def setup(self):
        self.cube = make_cube(
            self.backend, (CELL_DOMAIN, CELL_DOMAIN), TIME_DOMAIN
        )
        self.model = np.zeros(
            (TIME_DOMAIN, CELL_DOMAIN, CELL_DOMAIN), dtype=np.int64
        )
        self.clock = 0

    @rule(
        advance=st.integers(0, 3),
        x=st.integers(0, CELL_DOMAIN - 1),
        y=st.integers(0, CELL_DOMAIN - 1),
        delta=st.integers(-5, 9),
    )
    def append(self, advance, x, y, delta):
        self.clock = min(TIME_DOMAIN - 1, self.clock + advance)
        point = (self.clock, x, y)
        self.cube.update(point, delta)
        self.model[point] += delta

    @precondition(lambda self: self.clock > 0)
    @rule(
        t=st.integers(0, TIME_DOMAIN - 1),
        x=st.integers(0, CELL_DOMAIN - 1),
        y=st.integers(0, CELL_DOMAIN - 1),
        delta=st.integers(-3, 6),
    )
    def correct(self, t, x, y, delta):
        t = min(t, self.clock - 1)
        self.cube.apply_out_of_order((t, x, y), delta)
        self.model[t, x, y] += delta

    @precondition(lambda self: self.cube.num_slices > 0)
    @rule(data=st.data())
    def query(self, data):
        lows = [
            data.draw(st.integers(0, n - 1))
            for n in (TIME_DOMAIN, CELL_DOMAIN, CELL_DOMAIN)
        ]
        highs = [
            data.draw(st.integers(low, n - 1))
            for low, n in zip(lows, (TIME_DOMAIN, CELL_DOMAIN, CELL_DOMAIN))
        ]
        box = Box(tuple(lows), tuple(highs))
        expected = brute_box_sum(self.model, box)
        assert self.cube.query(box) == expected
        assert self.cube.query_many([box], mode="fast") == [expected]

    @invariant()
    def totals_agree(self):
        if getattr(self, "cube", None) is not None and self.cube.num_slices:
            assert self.cube.total() == int(self.model.sum())


class DenseMachine(BackendMachine):
    backend = "dense"


class PagedMachine(BackendMachine):
    backend = "paged"


class SparseMachine(BackendMachine):
    backend = "sparse"


_MACHINE_SETTINGS = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)

TestDenseMachine = DenseMachine.TestCase
TestDenseMachine.settings = _MACHINE_SETTINGS
TestPagedMachine = PagedMachine.TestCase
TestPagedMachine.settings = _MACHINE_SETTINGS
TestSparseMachine = SparseMachine.TestCase
TestSparseMachine.settings = _MACHINE_SETTINGS
