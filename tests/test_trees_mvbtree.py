"""Tests for the multiversion B-tree (Becker et al.)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AppendOrderError, DomainError
from repro.trees.mvbtree import MultiversionBTree


class _Model:
    """Reference model: explicit item timelines."""

    def __init__(self) -> None:
        # (key, value, start_version, end_version-or-None)
        self.items: list[list] = []

    def insert(self, key: int, value: int, version: int) -> None:
        self.items.append([key, value, version, None])

    def delete_item(self, key: int, value: int, version: int) -> bool:
        for item in self.items:
            if item[0] == key and item[1] == value and item[3] is None:
                item[3] = version
                return True
        return False

    def range_sum(self, lower: int, upper: int, version: int) -> int:
        return sum(
            value
            for key, value, start, end in self.items
            if lower <= key <= upper
            and start <= version
            and (end is None or version < end)
        )

    def net_items(self, version: int) -> list[tuple[int, int]]:
        sums: dict[int, int] = {}
        for key, value, start, end in self.items:
            if start <= version and (end is None or version < end):
                sums[key] = sums.get(key, 0) + value
        return sorted((k, v) for k, v in sums.items() if v != 0)


class TestBasics:
    def test_capacity_validated(self):
        with pytest.raises(DomainError):
            MultiversionBTree(capacity=4)

    def test_empty(self):
        tree = MultiversionBTree()
        assert tree.range_sum(0, 100) == 0
        assert list(tree.items_at(0)) == []
        assert tree.get(5) == 0

    def test_insert_and_query_current(self):
        tree = MultiversionBTree()
        tree.insert(5, 10)
        tree.insert(7, 20)
        assert tree.range_sum(0, 10) == 30
        assert tree.range_sum(6, 10) == 20
        assert tree.get(5) == 10

    def test_version_monotonicity(self):
        tree = MultiversionBTree()
        tree.advance_version(5)
        with pytest.raises(AppendOrderError):
            tree.advance_version(3)

    def test_inverted_range(self):
        tree = MultiversionBTree()
        with pytest.raises(DomainError):
            tree.range_sum(5, 3)

    def test_historic_versions_stay_queryable(self):
        tree = MultiversionBTree()
        tree.insert(1, 100, version=0)
        tree.insert(2, 200, version=1)
        tree.advance_version(2)
        tree.delete(1, 100)
        assert tree.range_sum(0, 9, version=0) == 100
        assert tree.range_sum(0, 9, version=1) == 300
        assert tree.range_sum(0, 9, version=2) == 200
        assert tree.range_sum(0, 9) == 200

    def test_measure_accumulation(self):
        tree = MultiversionBTree()
        for _ in range(5):
            tree.update(3, 2)
        assert tree.get(3) == 10
        assert list(tree.items_at(0)) == [(3, 10)]


class TestAgainstModel:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_histories(self, data):
        capacity = data.draw(st.sampled_from([8, 12, 16]))
        num_ops = data.draw(st.integers(1, 250))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        tree = MultiversionBTree(capacity=capacity)
        model = _Model()
        version = 0
        live_items: list[tuple[int, int]] = []
        for _ in range(num_ops):
            if rng.random() < 0.25:
                version += int(rng.integers(1, 3))
                tree.advance_version(version)
            if live_items and rng.random() < 0.3:
                key, value = live_items.pop(int(rng.integers(0, len(live_items))))
                tree.delete(key, value)
                assert model.delete_item(key, value, version)
            else:
                key = int(rng.integers(0, 200))
                value = int(rng.integers(1, 10))
                tree.insert(key, value)
                model.insert(key, value, version)
                live_items.append((key, value))
        tree.check_invariants()
        for probe in range(0, version + 2, max(1, version // 10)):
            assert list(tree.items_at(probe)) == model.net_items(probe)
            for _ in range(4):
                a, b = sorted(int(x) for x in rng.integers(0, 200, size=2))
                assert tree.range_sum(a, b, version=probe) == model.range_sum(
                    a, b, probe
                ), (probe, a, b)

    def test_insert_heavy_growth(self):
        rng = np.random.default_rng(123)
        tree = MultiversionBTree(capacity=16)
        model = _Model()
        for version in range(200):
            tree.advance_version(version)
            for _ in range(10):
                key = int(rng.integers(0, 1000))
                tree.insert(key, 1)
                model.insert(key, 1, version)
        tree.check_invariants()
        for probe in (0, 50, 120, 199):
            assert tree.range_sum(0, 999, version=probe) == model.range_sum(
                0, 999, probe
            )
            assert tree.range_sum(100, 400, version=probe) == model.range_sum(
                100, 400, probe
            )

    def test_exhaustive_small_histories(self):
        # dense verification across every version of several seeds
        for seed in range(12):
            rng = np.random.default_rng(seed)
            tree = MultiversionBTree(capacity=8)
            model = _Model()
            version = 0
            live: list[tuple[int, int]] = []
            for _ in range(120):
                if rng.random() < 0.25:
                    version += int(rng.integers(1, 3))
                    tree.advance_version(version)
                if live and rng.random() < 0.3:
                    key, value = live.pop(int(rng.integers(0, len(live))))
                    tree.delete(key, value)
                    model.delete_item(key, value, version)
                else:
                    key = int(rng.integers(0, 200))
                    value = int(rng.integers(1, 10))
                    tree.insert(key, value)
                    model.insert(key, value, version)
                    live.append((key, value))
            tree.check_invariants()
            for v in range(version + 1):
                assert list(tree.items_at(v)) == model.net_items(v), (seed, v)
                for a in range(0, 200, 31):
                    for b in range(a, 200, 43):
                        assert tree.range_sum(a, b, version=v) == model.range_sum(
                            a, b, v
                        ), (seed, v, a, b)


class TestComplexity:
    def test_storage_linear_in_updates(self):
        rng = np.random.default_rng(7)
        tree = MultiversionBTree(capacity=16)
        updates = 3000
        for version in range(updates):
            tree.advance_version(version)
            tree.insert(int(rng.integers(0, 10_000)), 1)
        assert tree.nodes_allocated <= 6 * (updates // 4)

    def test_historic_query_cost_logarithmic(self):
        rng = np.random.default_rng(8)
        tree = MultiversionBTree(capacity=32)
        for version in range(4000):
            tree.advance_version(version)
            tree.insert(int(rng.integers(0, 100_000)), 1)
        tree.node_accesses = 0
        tree.range_sum(500, 520, version=2000)
        assert tree.node_accesses <= 40

    def test_update_cost_logarithmic(self):
        rng = np.random.default_rng(9)
        tree = MultiversionBTree(capacity=32)
        for version in range(4000):
            tree.advance_version(version)
            tree.insert(int(rng.integers(0, 100_000)), 1)
        tree.node_accesses = 0
        tree.insert(50_000, 1)
        assert tree.node_accesses <= 30
