"""Tests for the general append-only framework (Section 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AppendOrderError, DomainError
from repro.core.framework import (
    AppendOnlyAggregator,
    CopySnapshotStructure,
    TreeSliceStructure,
)
from repro.core.types import Box

from tests.conftest import brute_box_sum, random_box


def random_stream(rng, shape, count, out_of_order=0.0):
    times = np.sort(rng.integers(0, shape[0], size=count))
    if out_of_order:
        # move a fraction of updates earlier in time than already-seen ones
        times = times.copy()
    updates = []
    for t in times:
        updates.append(
            ((int(t), int(rng.integers(0, shape[1]))), int(rng.integers(-5, 9)))
        )
    return updates


class TestPaperSection22Example:
    """The running example of Figure 1/Figure 2."""

    def test_figure2_query(self):
        # points (time, location, value) from Figure 1's final state,
        # reconstructed from the narrative: query 2<=t<=4, 3<=loc<=5 -> 6
        agg = AppendOnlyAggregator(ndim=2)
        agg.update((1, 4), 7)  # R1(1) answers 7 on location range 3..5
        agg.update((3, 3), 2)
        agg.update((3, 7), 5)
        agg.update((4, 5), 4)
        agg.update((4, 1), 3)
        assert agg.query(Box((2, 3), (4, 5))) == 6
        # the prefix-time decomposition: R1(4) gives 13, R1(1) gives 7
        assert agg.query(Box((0, 3), (4, 5))) == 13
        assert agg.query(Box((0, 3), (1, 5))) == 7


class TestConstruction:
    def test_needs_two_dimensions(self):
        with pytest.raises(DomainError):
            AppendOnlyAggregator(ndim=1)

    def test_default_factory_is_one_dimensional_only(self):
        with pytest.raises(DomainError):
            AppendOnlyAggregator(ndim=3)

    def test_out_of_order_disabled_raises(self):
        agg = AppendOnlyAggregator(ndim=2)
        agg.update((5, 0), 1)
        with pytest.raises(AppendOrderError):
            agg.update((4, 0), 1)


class TestCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_matches_dense_reference(self, data):
        shape = (
            data.draw(st.integers(2, 30)),
            data.draw(st.integers(2, 30)),
        )
        count = data.draw(st.integers(1, 120))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        updates = random_stream(rng, shape, count)
        agg = AppendOnlyAggregator(ndim=2)
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in updates:
            agg.update(point, delta)
            dense[point] += delta
        for _ in range(10):
            box = random_box(rng, shape)
            assert agg.query(box) == brute_box_sum(dense, box)

    def test_interleaved_queries(self):
        rng = np.random.default_rng(60)
        shape = (40, 20)
        agg = AppendOnlyAggregator(ndim=2)
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in random_stream(rng, shape, 300):
            agg.update(point, delta)
            dense[point] += delta
            box = random_box(rng, shape)
            assert agg.query(box) == brute_box_sum(dense, box)

    def test_snapshot_count_equals_occurring_times(self):
        rng = np.random.default_rng(61)
        agg = AppendOnlyAggregator(ndim=2)
        times = sorted(set(int(t) for t in rng.integers(0, 50, size=30)))
        for t in times:
            agg.update((t, 0), 1)
        assert agg.num_instances == len(times)
        assert agg.occurring_times() == tuple(times)


class TestOutOfOrder:
    def test_buffered_and_queryable(self):
        agg = AppendOnlyAggregator(ndim=2, out_of_order=True)
        agg.update((0, 3), 5)
        agg.update((10, 4), 7)
        agg.update((5, 3), 100)  # late arrival for historic time 5
        assert agg.buffered_updates == 1
        assert agg.query(Box((0, 0), (10, 9))) == 112
        assert agg.query(Box((4, 0), (6, 9))) == 100
        assert agg.query(Box((6, 0), (10, 9))) == 7

    def test_drain_applies_to_all_later_instances(self):
        agg = AppendOnlyAggregator(ndim=2, out_of_order=True)
        for t in [0, 3, 6, 9]:
            agg.update((t, 1), 1)
        agg.update((4, 1), 50)  # late; affects instances 6, 9 and beyond
        drained = agg.drain()
        assert drained == 1
        assert agg.buffered_updates == 0
        assert agg.query(Box((0, 0), (3, 9))) == 2
        assert agg.query(Box((0, 0), (5, 9))) == 52
        assert agg.query(Box((0, 0), (9, 9))) == 54
        assert agg.query(Box((4, 0), (6, 9))) == 51

    def test_drain_limit(self):
        agg = AppendOnlyAggregator(ndim=2, out_of_order=True)
        agg.update((10, 0), 1)
        for t in (1, 2, 3):
            agg.update((t, 0), 10)
        assert agg.drain(limit=2) == 2
        assert agg.buffered_updates == 1
        assert agg.query(Box((0, 0), (10, 9))) == 31

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_random_out_of_order_streams(self, data):
        from repro.workloads.streams import interleave_out_of_order

        shape = (30, 12)
        count = data.draw(st.integers(5, 80))
        fraction = data.draw(st.sampled_from([0.1, 0.3, 0.6]))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        updates = random_stream(rng, shape, count)
        agg = AppendOnlyAggregator(ndim=2, out_of_order=True)
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in interleave_out_of_order(updates, fraction, seed=seed):
            agg.update(point, delta)
            dense[point] += delta
        boxes = [random_box(rng, shape) for _ in range(6)]
        for box in boxes:
            assert agg.query(box) == brute_box_sum(dense, box)
        agg.drain()
        for box in boxes:
            assert agg.query(box) == brute_box_sum(dense, box)


class TestNaiveCopyStructure:
    def test_deep_copy_snapshots_work(self):
        from tests.test_core_framework import random_stream  # self-import ok

        class DictStructure:
            def __init__(self):
                self.data = {}

            def update(self, cell, delta):
                key = cell[0] if isinstance(cell, tuple) else cell
                self.data[key] = self.data.get(key, 0) + delta

            def range_sum(self, lower, upper):
                low = lower[0] if isinstance(lower, tuple) else lower
                up = upper[0] if isinstance(upper, tuple) else upper
                return sum(v for k, v in self.data.items() if low <= k <= up)

        agg = AppendOnlyAggregator(
            slice_factory=lambda: CopySnapshotStructure(DictStructure()), ndim=2
        )
        rng = np.random.default_rng(62)
        dense = np.zeros((20, 10), dtype=np.int64)
        for point, delta in random_stream(rng, (20, 10), 60):
            agg.update(point, delta)
            dense[point] += delta
        for _ in range(10):
            box = random_box(rng, (20, 10))
            assert agg.query(box) == brute_box_sum(dense, box)


class TestTreeSliceStructure:
    def test_accepts_scalar_and_tuple_cells(self):
        structure = TreeSliceStructure()
        structure.update(3, 5)
        structure.update((3,), 2)
        assert structure.range_sum(3, 3) == 7
        assert structure.range_sum((0,), (10,)) == 7

    def test_rejects_multidimensional_cells(self):
        structure = TreeSliceStructure()
        with pytest.raises(DomainError):
            structure.update((1, 2), 5)
