"""Tests for the aggregate B+tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError
from repro.trees.bptree import BPlusTree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.get(5) == 0
        assert tree.range_sum(0, 100) == 0
        assert tree.total() == 0

    def test_single_key_accumulates(self):
        tree = BPlusTree()
        tree.update(7, 3)
        tree.update(7, 4)
        assert tree.get(7) == 7
        assert len(tree) == 1

    def test_rejects_small_fanout(self):
        with pytest.raises(DomainError):
            BPlusTree(fanout=2)

    def test_inverted_range_rejected(self):
        tree = BPlusTree()
        with pytest.raises(DomainError):
            tree.range_sum(5, 3)

    def test_items_in_key_order(self):
        tree = BPlusTree(fanout=4)
        for key in [5, 1, 9, 3, 7]:
            tree.update(key, key)
        assert list(tree.items()) == [(1, 1), (3, 3), (5, 5), (7, 7), (9, 9)]


class TestAgainstDictModel:
    @settings(max_examples=40, deadline=None)
    @given(
        updates=st.lists(
            st.tuples(st.integers(0, 300), st.integers(-10, 10)),
            min_size=1,
            max_size=300,
        ),
        queries=st.lists(
            st.tuples(st.integers(0, 300), st.integers(0, 300)),
            min_size=1,
            max_size=30,
        ),
        fanout=st.sampled_from([4, 5, 8, 32]),
    )
    def test_range_sums_match_model(self, updates, queries, fanout):
        tree = BPlusTree(fanout=fanout)
        model: dict[int, int] = {}
        for key, delta in updates:
            tree.update(key, delta)
            model[key] = model.get(key, 0) + delta
        for a, b in queries:
            low, up = min(a, b), max(a, b)
            expected = sum(v for k, v in model.items() if low <= k <= up)
            assert tree.range_sum(low, up) == expected
            assert tree.prefix_sum(up) == sum(
                v for k, v in model.items() if k <= up
            )

    def test_large_sequential_and_random(self):
        rng = np.random.default_rng(5)
        tree = BPlusTree(fanout=8)
        model: dict[int, int] = {}
        for key in range(2000):
            tree.update(key, 1)
            model[key] = 1
        for key in rng.integers(0, 2000, size=1000):
            tree.update(int(key), 2)
            model[int(key)] += 2
        assert tree.total() == sum(model.values())
        for _ in range(50):
            a, b = sorted(int(v) for v in rng.integers(0, 2000, size=2))
            assert tree.range_sum(a, b) == sum(
                model[k] for k in range(a, b + 1)
            )


class TestComplexity:
    def test_height_logarithmic(self):
        tree = BPlusTree(fanout=8)
        for key in range(10_000):
            tree.update(key, 1)
        # fanout 8 => height about log_4(10000) ~ 7; allow slack
        assert tree.height <= 9

    def test_range_query_node_accesses_bounded(self):
        tree = BPlusTree(fanout=8)
        for key in range(10_000):
            tree.update(key, 1)
        tree.node_accesses = 0
        assert tree.range_sum(17, 9_876) == 9_860
        # two boundary paths of height nodes each, give or take
        assert tree.node_accesses <= 4 * tree.height
