"""TT-extent objects on the eCube (Section 2.4): the multi-family kernel.

Three contracts are pinned here:

* **Differential**: on random interval streams -- including shuffled,
  out-of-order arrival and batch inserts -- ``ExtentCube`` answers
  (COUNT and SUM; intersection, containment, alive-at) must be
  bit-identical to the tree-based :class:`repro.core.extent
  .IntervalAggregator` oracle, on every backend.
* **Kernel-split neutrality**: injecting an explicit
  ``FamilyDirectory`` into a point-object cube must leave its metered
  golden costs and durable state byte-identical to the default path.
* **Shared-axis alignment**: both families always expose the same
  occurring times, through appends, splices, restores and retirement.
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrent import SnapshotExtentCube
from repro.core.errors import AppendOrderError, DomainError
from repro.core.extent import IntervalAggregator
from repro.core.types import Box, TimeInterval
from repro.ecube import (
    EvolvingDataCube,
    ExtentCube,
    FamilyDirectory,
    SharedTimeAxis,
)
from repro.metrics import CostCounter

BACKENDS = ("dense", "paged", "sparse")
KEYS = 6  # 1-d cell space so the oracle's scalar key range applies


def _backend_kwargs(backend):
    return {"page_size": 4, "cell_size": 3} if backend == "paged" else {}


@st.composite
def interval_streams(draw):
    """A random interval stream plus queries, with a shuffled arrival order."""
    n = draw(st.integers(1, 22))
    objects = [
        (
            start := draw(st.integers(0, 50)),
            start + draw(st.integers(0, 25)),
            draw(st.integers(0, KEYS - 1)),
            draw(st.integers(1, 6)),
        )
        for _ in range(n)
    ]
    order = draw(st.permutations(range(n)))
    queries = [
        (low := draw(st.integers(0, 60)), low + draw(st.integers(0, 30)))
        for _ in range(draw(st.integers(1, 5)))
    ]
    key_ranges = [
        (lo := draw(st.integers(0, KEYS - 1)), draw(st.integers(lo, KEYS - 1)))
        for _ in queries
    ]
    return objects, order, queries, key_ranges


def _oracle(objects):
    oracle = IntervalAggregator()
    for start, end, key, value in sorted(objects):
        oracle.insert(TimeInterval(start, end), key, value)
    return oracle


class TestDifferential:
    @given(data=interval_streams(), backend=st.sampled_from(BACKENDS))
    @settings(max_examples=60, deadline=None)
    def test_matches_oracle_shuffled_arrival(self, data, backend):
        objects, order, queries, key_ranges = data
        cube = ExtentCube((KEYS,), backend=backend, **_backend_kwargs(backend))
        for i in order:  # out-of-order arrival incl. late end events
            start, end, key, value = objects[i]
            cube.insert(TimeInterval(start, end), (key,), value)
        oracle = _oracle(objects)
        for (low, up), (k_lo, k_up) in zip(queries, key_ranges):
            query = TimeInterval(low, up)
            box = Box((k_lo,), (k_up,))
            expected = oracle.intersecting(query, k_lo, k_up)
            assert cube.intersecting(query, box) == expected
            assert cube.intersecting(query, box, mode="metered") == expected
            assert cube.alive_at(low, box) == oracle.alive_at(low, k_lo, k_up)
        # containment: the oracle aggregates over the full key range
        for low, up in queries:
            assert cube.containment(TimeInterval(low, up)) == (
                _oracle(objects).containment(TimeInterval(low, up))
            )

    @given(data=interval_streams(), backend=st.sampled_from(BACKENDS))
    @settings(max_examples=40, deadline=None)
    def test_batch_insert_matches_metered_replay(self, data, backend):
        objects, order, queries, key_ranges = data
        intervals = np.array(
            [(objects[i][0], objects[i][1]) for i in order], dtype=np.int64
        )
        cells = np.array([[objects[i][2]] for i in order], dtype=np.int64)
        values = np.array([objects[i][3] for i in order], dtype=np.int64)
        fast = ExtentCube((KEYS,), backend=backend, **_backend_kwargs(backend))
        fast.insert_many(intervals, cells, values, mode="fast")
        metered = ExtentCube((KEYS,), backend=backend, **_backend_kwargs(backend))
        metered.insert_many(intervals, cells, values, mode="metered")
        tis = [TimeInterval(low, up) for low, up in queries]
        boxes = [Box((lo,), (up,)) for lo, up in key_ranges]
        assert fast.intersecting_many(tis, boxes) == metered.intersecting_many(
            tis, boxes
        )
        assert fast.containment_many(tis, boxes) == metered.containment_many(
            tis, boxes
        )
        oracle = _oracle(objects)
        assert fast.intersecting_many(tis, boxes) == [
            oracle.intersecting(q, lo, up)
            for q, (lo, up) in zip(tis, key_ranges)
        ]

    def test_count_semantics_default_value(self):
        cube = ExtentCube((4,))
        oracle = IntervalAggregator()
        for start, end, key in [(0, 4, 1), (2, 2, 3), (3, 9, 1)]:
            cube.insert(TimeInterval(start, end), (key,))
            oracle.insert(TimeInterval(start, end), key)
        assert cube.intersecting(TimeInterval(2, 3)) == oracle.intersecting(
            TimeInterval(2, 3), 0, 3
        )
        assert cube.alive_at(4) == oracle.alive_at(4, 0, 3)


class TestKernelSplitNeutrality:
    """The family-directory refactor must not move point-object costs."""

    def _run(self, directory):
        counter = CostCounter()
        cube = EvolvingDataCube(
            (8, 8), num_times=8, counter=counter, directory=directory
        )
        rng = np.random.default_rng(11)
        costs = []
        for t in range(8):
            for _ in range(12):
                cube.update(
                    (t, int(rng.integers(0, 8)), int(rng.integers(0, 8))),
                    int(rng.integers(1, 5)),
                )
        for box in (
            Box((0, 0, 0), (6, 7, 7)),
            Box((2, 1, 1), (5, 6, 6)),
            Box((0, 3, 3), (7, 4, 4)),
        ):
            counter.reset()
            value = cube.query(box)
            costs.append((value, counter.cell_reads, counter.cell_writes))
        snap = counter.snapshot()
        return cube, costs, snap

    def test_metered_costs_and_state_byte_identical(self):
        baseline_cube, baseline_costs, baseline_snap = self._run(None)
        injected_cube, injected_costs, injected_snap = self._run(
            FamilyDirectory(SharedTimeAxis())
        )
        assert injected_costs == baseline_costs
        assert injected_snap == baseline_snap
        base = baseline_cube.state_arrays()
        other = injected_cube.state_arrays()
        assert sorted(base) == sorted(other)
        for key in base:
            assert np.asarray(base[key]).tobytes() == np.asarray(
                other[key]
            ).tobytes(), key

    def test_shared_axis_rejects_second_kernel_on_bound_directory(self):
        directory = FamilyDirectory(SharedTimeAxis())
        EvolvingDataCube((4,), directory=directory)
        with pytest.raises(DomainError):
            EvolvingDataCube((4,), directory=directory)


class TestSharedAxisAlignment:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_families_stay_aligned(self, backend):
        cube = ExtentCube((5,), backend=backend, **_backend_kwargs(backend))
        rng = np.random.default_rng(5)
        inserted = []
        t = 0
        for _ in range(40):
            t += int(rng.integers(0, 4))
            inserted.append((t, t + int(rng.integers(0, 10))))
            cube.insert(inserted[-1], (int(rng.integers(0, 5)),), 1)
        # late arrivals behind the clock
        for start in (1, 3, t // 2):
            cube.insert((start, start + 2), (0,), 1)
        cube.advance(t + 40)
        cube.drain()
        cube.axis.check_aligned()
        b_times = cube.ended.cube.occurring_times()
        c_times = cube.containing.cube.occurring_times()
        assert b_times == c_times == cube.occurring_times()
        assert cube.pending_ends == 0

    def test_alignment_survives_retirement(self):
        cube = ExtentCube((3,))
        for start in range(0, 30, 3):
            cube.insert((start, start + 5), (start % 3,), 2)
        cube.advance(64)
        before = cube.containment(TimeInterval(0, 64))
        cube.retire_before(15)
        cube.axis.check_aligned()
        # containment is answered from the moved-over index: exact across
        # the retirement boundary
        assert cube.containment(TimeInterval(0, 64)) == before

    def test_validation_errors(self):
        cube = ExtentCube((4,))
        cube.insert((5, 9), (1,), 1)
        with pytest.raises(AppendOrderError):
            cube.advance(2)
        with pytest.raises(DomainError):
            cube.insert((0, 3), (1, 2), 1)  # wrong cell arity
        with pytest.raises(DomainError):
            cube.insert_many(
                np.array([[7, 3]]), np.array([[1]])
            )  # inverted interval
        with pytest.raises(DomainError):
            ExtentCube((4,), backend="nope")


class TestStateRoundTrip:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical_through_npz(self, backend):
        cube = ExtentCube((4, 4), backend=backend, **_backend_kwargs(backend))
        rng = np.random.default_rng(9)
        t = 0
        for _ in range(30):
            t += int(rng.integers(0, 3))
            cube.insert(
                (t, t + int(rng.integers(0, 9))),
                (int(rng.integers(0, 4)), int(rng.integers(0, 4))),
                int(rng.integers(1, 4)),
            )
        cube.insert((2, 5), (0, 0), 1)  # late, keeps G_d busy
        cube.advance(t + 4)
        arrays = cube.state_arrays()
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        buffer.seek(0)
        twin = ExtentCube((4, 4), backend=backend, **_backend_kwargs(backend))
        twin.restore_state(np.load(buffer))
        twin.axis.check_aligned()
        again = twin.state_arrays()
        assert sorted(arrays) == sorted(again)
        for key in arrays:
            assert arrays[key].tobytes() == again[key].tobytes(), key
        # the twin keeps evolving identically
        for target in (cube, twin):
            target.insert((t + 5, t + 9), (1, 1), 2)
        queries = [TimeInterval(0, t + 10), TimeInterval(3, 7)]
        assert cube.intersecting_many(queries) == twin.intersecting_many(queries)
        assert cube.containment_many(queries) == twin.containment_many(queries)

    def test_restore_requires_empty(self):
        cube = ExtentCube((2,))
        cube.insert((0, 1), (0,), 1)
        arrays = cube.state_arrays()
        occupied = ExtentCube((2,))
        occupied.insert((0, 1), (1,), 1)
        with pytest.raises(DomainError):
            occupied.restore_state(arrays)


class TestSnapshotServing:
    def test_pinned_view_is_frozen_and_exact(self):
        cube = ExtentCube((4, 4))
        serve = SnapshotExtentCube(cube)
        rng = np.random.default_rng(3)
        t = 0
        for _ in range(25):
            t += int(rng.integers(0, 3))
            serve.insert(
                (t, t + int(rng.integers(0, 8))),
                (int(rng.integers(0, 4)), int(rng.integers(0, 4))),
                2,
            )
        queries = [TimeInterval(0, t + 5), TimeInterval(t // 2, t)]
        boxes = [None, Box((1, 1), (3, 3))]
        with serve.pin() as view:
            expected_i = [
                cube.intersecting(q, b) for q, b in zip(queries, boxes)
            ]
            expected_c = [
                cube.containment(q, b) for q, b in zip(queries, boxes)
            ]
            assert view.intersecting_many(queries, boxes) == expected_i
            assert view.containment_many(queries, boxes) == expected_c
            assert view.alive_at(t) == cube.alive_at(t)
            # mutations after the pin must not leak into the view
            serve.insert((t + 1, t + 30), (0, 0), 50)
            serve.advance(t + 40)
            assert view.intersecting_many(queries, boxes) == expected_i
            assert view.containment_many(queries, boxes) == expected_c
        # ephemeral reads see the new state
        assert serve.intersecting(
            TimeInterval(t + 2, t + 2), Box((0, 0), (0, 0))
        ) >= 50
        serve.close()

    def test_rejects_non_extent_target(self):
        with pytest.raises(DomainError):
            SnapshotExtentCube(EvolvingDataCube((4,)))

    def test_view_release_then_use_raises(self):
        cube = ExtentCube((2,))
        cube.insert((0, 3), (0,), 1)
        serve = SnapshotExtentCube(cube)
        view = serve.pin()
        view.release()
        with pytest.raises(DomainError):
            view.intersecting(TimeInterval(0, 1))
        serve.close()
