"""Differential suite for the tiered retention subsystem.

Everything here is pinned against an *undemoted oracle*: the same
stream fed to a plain front must produce bit-identical answers from a
:class:`~repro.retention.TieredCube` after arbitrary demotions, on all
three storage backends, with and without the ``G_d`` buffer, in both
execution modes, and straight through a demote -> checkpoint -> crash ->
recover cycle.  The aged-``weather4`` footprint floor (>= 4x resident
reduction) guards the subsystem's reason to exist.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.concurrent import SnapshotCube
from repro.core.types import Box
from repro.durability import DurableCube
from repro.ecube.buffered import BufferedEvolvingDataCube
from repro.ecube.disk import DiskEvolvingDataCube
from repro.ecube.ecube import EvolvingDataCube
from repro.ecube.sparse import SparseEvolvingDataCube
from repro.retention import TieredCube, TierPolicy
from repro.workloads import weather4

BACKENDS = ("dense", "paged", "sparse")
SHAPE = (5, 4)
TIERS = [
    {"name": "hour", "granularity": 8, "horizon": 32},
    {"name": "day", "granularity": 32, "horizon": None},
]


def _bare_cube(backend, shape=SHAPE):
    if backend == "dense":
        return EvolvingDataCube(shape)
    if backend == "paged":
        return DiskEvolvingDataCube(shape)
    return SparseEvolvingDataCube(shape)


def _stream(seed, n, shape=SHAPE, late=0.12):
    """A mixed append/late stream of (point, delta) rows."""
    rng = np.random.default_rng(seed)
    t = 0
    points, deltas = [], []
    for _ in range(n):
        if rng.random() < 0.3:
            t += int(rng.integers(1, 3))
        cell = tuple(int(rng.integers(0, k)) for k in shape)
        when = t
        if rng.random() < late and t > 5:
            when = max(0, t - int(rng.integers(1, 20)))
        points.append((when,) + cell)
        deltas.append(int(rng.integers(1, 9)))
    return np.asarray(points, dtype=np.int64), np.asarray(deltas, dtype=np.int64)


def _boxes(seed, t_max, shape=SHAPE):
    rng = np.random.default_rng(seed)
    spans = [
        (0, t_max), (0, 10), (5, 40), (30, 70), (60, t_max), (0, 69),
        (0, 31), (32, 63), (8, 8), (min(64, t_max), min(64, t_max)),
    ]
    boxes = []
    for lo_t, hi_t in spans:
        cl = tuple(int(rng.integers(0, n // 2 + 1)) for n in shape)
        cu = tuple(int(rng.integers(c, n)) for c, n in zip(cl, shape))
        boxes.append(Box((lo_t,) + cl, (min(hi_t, t_max),) + cu))
    return boxes


class TestDifferentialOracle:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("buffered", [False, True])
    def test_bit_identical_to_undemoted_oracle(self, tmp_path, backend, buffered):
        late = 0.12 if buffered else 0.0  # bare kernels are append-only
        points, deltas = _stream(3, 260, late=late)
        t_max = int(points[:, 0].max())
        if buffered:
            oracle = BufferedEvolvingDataCube(SHAPE, backend=backend)
            front = BufferedEvolvingDataCube(SHAPE, backend=backend)
        else:
            oracle = _bare_cube(backend)
            front = _bare_cube(backend)
        tiered = TieredCube(front, TIERS, tmp_path / "tiles")
        oracle.update_many(points, deltas)
        tiered.update_many(points, deltas)
        boxes = _boxes(11, t_max)
        for horizon in (t_max - 30, t_max - 5):
            demoted = tiered.demote_before(horizon)
            assert demoted >= 0
            for mode in ("fast", "metered"):
                assert tiered.query_many(boxes, mode=mode) == oracle.query_many(
                    boxes, mode=mode
                )
        assert tiered.demoted_through is not None
        assert len(tiered.tiles) >= 1

    def test_late_corrections_after_demotion_stay_exact(self, tmp_path):
        points, deltas = _stream(9, 200)
        t_max = int(points[:, 0].max())
        oracle = BufferedEvolvingDataCube(SHAPE)
        tiered = TieredCube(
            BufferedEvolvingDataCube(SHAPE), TIERS, tmp_path / "tiles"
        )
        oracle.update_many(points, deltas)
        tiered.update_many(points, deltas)
        tiered.demote_before(t_max - 10)
        # a correction aimed below the demotion watermark: the oracle
        # cascades it, the tiered front must fold it in via G_d
        late_point = (5,) + (1,) * len(SHAPE)
        oracle.update(late_point, 7)
        tiered.update(late_point, 7)
        oracle.drain(None)
        tiered.drain(None)
        boxes = _boxes(13, t_max)
        for mode in ("fast", "metered"):
            assert tiered.query_many(boxes, mode=mode) == oracle.query_many(
                boxes, mode=mode
            )

    def test_demotion_shrinks_resident_footprint(self, tmp_path):
        points, deltas = _stream(5, 400, late=0.0)
        t_max = int(points[:, 0].max())
        plain = BufferedEvolvingDataCube(SHAPE)
        tiered = TieredCube(
            BufferedEvolvingDataCube(SHAPE), TIERS, tmp_path / "tiles"
        )
        plain.update_many(points, deltas)
        tiered.update_many(points, deltas)
        tiered.demote_before(t_max - 3)
        assert tiered.resident_slice_bytes() < plain.resident_slice_bytes()


class TestTierPolicy:
    def test_config_round_trip(self):
        policy = TierPolicy.from_config(TIERS)
        assert policy.to_config() == TierPolicy.from_config(
            policy.to_config()
        ).to_config()
        assert [spec.name for spec in policy] == ["hour", "day"]

    def test_granularities_must_coarsen(self):
        from repro.core.errors import DomainError

        with pytest.raises(DomainError):
            TierPolicy.from_config(
                [
                    {"name": "a", "granularity": 16, "horizon": 32},
                    {"name": "b", "granularity": 8, "horizon": None},
                ]
            )

    def test_granularities_must_nest(self):
        from repro.core.errors import DomainError

        with pytest.raises(DomainError):
            TierPolicy.from_config(
                [
                    {"name": "a", "granularity": 8, "horizon": 32},
                    {"name": "b", "granularity": 12, "horizon": None},
                ]
            )


class TestDurableRecovery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_demote_checkpoint_crash_recover_bit_identical(
        self, tmp_path, backend
    ):
        points, deltas = _stream(3, 200)
        t_max = int(points[:, 0].max())
        oracle = BufferedEvolvingDataCube(SHAPE, backend=backend)
        durable = DurableCube(SHAPE, tmp_path / "cube", backend=backend, tiers=TIERS)
        oracle.update_many(points, deltas)
        durable.update_many(points, deltas)
        durable.demote_before(t_max - 40)
        durable.checkpoint()
        tail_points, tail_deltas = _stream(5, 100)
        tail_points[:, 0] += t_max
        oracle.update_many(tail_points, tail_deltas)
        durable.update_many(tail_points, tail_deltas)
        durable.demote_before(t_max - 10)
        durable.flush()
        state_before = {
            key: np.array(value)
            for key, value in durable.front.retention_state_arrays().items()
        }
        del durable  # crash: no close, no final checkpoint
        recovered = DurableCube.recover(tmp_path / "cube")
        try:
            state_after = recovered.front.retention_state_arrays()
            assert sorted(state_after) == sorted(state_before)
            for key, value in state_before.items():
                np.testing.assert_array_equal(
                    state_after[key], value, err_msg=key
                )
            oracle.drain(None)
            recovered.drain(None)
            boxes = _boxes(7, t_max)
            for mode in ("fast", "metered"):
                got = recovered.query_many(boxes, mode=mode)
                assert got == oracle.query_many(boxes, mode=mode)
        finally:
            recovered.close()

    def test_untiered_durable_cube_rejects_demote(self, tmp_path):
        from repro.core.errors import DomainError

        durable = DurableCube(SHAPE, tmp_path / "cube")
        try:
            durable.update((0, 0, 0, 0, 0, 0)[: len(SHAPE) + 1], 1)
            with pytest.raises(DomainError):
                durable.demote_before(10)
        finally:
            durable.close()


class TestSnapshotReadersSurviveDemotion:
    def test_pinned_view_keeps_predemote_answers(self, tmp_path):
        points, deltas = _stream(3, 220, late=0.0)
        t_max = int(points[:, 0].max())
        tiered = TieredCube(
            BufferedEvolvingDataCube(SHAPE), TIERS, tmp_path / "tiles"
        )
        snap = SnapshotCube(tiered)
        snap.update_many(points, deltas)
        live_boxes = [
            box
            for box in _boxes(17, t_max)
            if box.lower[0] >= t_max - 5
        ] + [Box((t_max - 4, 0, 0), (t_max, *[n - 1 for n in SHAPE]))]
        with snap.pin() as view:
            before = view.query_many(live_boxes)
            tiered.demote_before(t_max - 5)
            # the pinned epoch still routes through payloads the demote
            # finalized and retired: answers must not move
            assert view.query_many(live_boxes) == before
        # a fresh pin sees the demoted cube; live-region answers agree
        assert snap.query_many(live_boxes) == before


class TestAgedWeather4Footprint:
    def test_four_x_resident_reduction_with_identical_answers(self, tmp_path):
        data = weather4(scale=0.2)
        tiers = [
            {"name": "hour", "granularity": 4, "horizon": 8},
            {"name": "day", "granularity": 24, "horizon": None},
        ]
        plain = BufferedEvolvingDataCube(data.slice_shape)
        tiered = TieredCube(
            BufferedEvolvingDataCube(data.slice_shape),
            tiers,
            tmp_path / "tiles",
        )
        plain.update_many(data.coords, data.values)
        tiered.update_many(data.coords, data.values)
        t_max = int(data.coords[:, 0].max())
        horizon = t_max - 2  # aged: nearly all history behind the watermark
        tiered.demote_before(horizon)
        resident_plain = plain.resident_slice_bytes()
        resident_tiered = tiered.resident_slice_bytes()
        assert resident_plain >= 4 * resident_tiered, (
            f"footprint floor violated: {resident_plain} undemoted vs "
            f"{resident_tiered} demoted"
        )
        full_cell = tuple(n - 1 for n in data.slice_shape)
        origin = (0,) * len(data.slice_shape)
        boxes = [
            Box((0,) + origin, (t_max,) + full_cell),
            Box((0,) + origin, (horizon - 1,) + full_cell),
            Box((horizon,) + origin, (t_max,) + full_cell),
            Box((3,) + origin, (11,) + full_cell),
        ]
        assert tiered.query_many(boxes) == plain.query_many(boxes)


class TestShardedDemotion:
    def test_inline_sharded_matches_unsharded_tiered_oracle(self, tmp_path):
        from repro.sharding import ShardedCube

        shape = (6, 5)
        points, deltas = _stream(3, 300, shape=shape)
        t_max = int(points[:, 0].max())
        oracle = TieredCube(
            BufferedEvolvingDataCube(shape), TIERS, tmp_path / "oracle"
        )
        oracle.update_many(points, deltas)
        sharded = ShardedCube(
            shape,
            shards=2,
            processes=False,
            tiers=TIERS,
            tile_root=tmp_path / "tiles",
        )
        try:
            sharded.update_many(points, deltas)
            boxes = _boxes(11, t_max, shape=shape)
            assert sharded.query_many(boxes) == oracle.query_many(boxes)
            assert oracle.demote_before(t_max - 20) >= 1
            assert sharded.demote_before(t_max - 20) >= 1
            assert sharded.router.demote_boundary == oracle.demoted_through
            assert sharded.query_many(boxes) == oracle.query_many(boxes)
        finally:
            sharded.close()

    def test_durable_sharded_recovers_demote_boundary(self, tmp_path):
        from repro.sharding import ShardedCube

        shape = (6, 5)
        points, deltas = _stream(7, 250, shape=shape)
        t_max = int(points[:, 0].max())
        oracle = TieredCube(
            BufferedEvolvingDataCube(shape), TIERS, tmp_path / "oracle"
        )
        oracle.update_many(points, deltas)
        oracle.demote_before(t_max - 15)
        cube = ShardedCube(
            shape,
            shards=2,
            processes=False,
            durable_dir=tmp_path / "fleet",
            tiers=TIERS,
        )
        cube.update_many(points, deltas)
        cube.demote_before(t_max - 15)
        cube.checkpoint()
        boundary = cube.router.demote_boundary
        cube.close()
        recovered = ShardedCube.recover(tmp_path / "fleet", processes=False)
        try:
            assert recovered.router.demote_boundary == boundary
            boxes = _boxes(13, t_max, shape=shape)
            assert recovered.query_many(boxes) == oracle.query_many(boxes)
        finally:
            recovered.close()
