"""Tests for the ROLAP instantiation (fact table + slice protocol)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError
from repro.core.framework import AppendOnlyAggregator
from repro.core.types import Box
from repro.metrics import CostCounter
from repro.rolap.facttable import FactTable
from repro.rolap.slices import ROLAPSliceStructure

from tests.conftest import brute_box_sum, random_box


class TestFactTable:
    def test_column_names_validated(self):
        with pytest.raises(DomainError):
            FactTable(())
        with pytest.raises(DomainError):
            FactTable(("a", "a"))

    def test_append_and_columns(self):
        table = FactTable(("time", "store"))
        table.append((0, 3), 10)
        table.append((1, 5), 20)
        assert len(table) == 2
        assert table.column("time").tolist() == [0, 1]
        assert table.column("store").tolist() == [3, 5]
        assert table.measures.tolist() == [10, 20]
        with pytest.raises(DomainError):
            table.column("nope")

    def test_arity_checked(self):
        table = FactTable(("time", "store"))
        with pytest.raises(DomainError):
            table.append((1,), 5)

    def test_sorted_discipline(self):
        table = FactTable(("time", "store"))
        table.append((5, 0), 1)
        with pytest.raises(DomainError):
            table.append((4, 0), 1)
        unordered = FactTable(("a", "b"), sorted_by_first=False)
        unordered.append((5, 0), 1)
        unordered.append((4, 0), 1)  # fine
        assert len(unordered) == 2

    def test_growth_beyond_initial_capacity(self):
        table = FactTable(("t", "x"))
        for i in range(3000):
            table.append((i, i % 7), 1)
        assert len(table) == 3000
        assert table.range_sum(Box((0, 0), (2999, 6))) == 3000

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_range_sum_matches_dense(self, data):
        shape = (data.draw(st.integers(2, 20)), data.draw(st.integers(2, 20)))
        count = data.draw(st.integers(1, 120))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        table = FactTable(("t", "x"))
        dense = np.zeros(shape, dtype=np.int64)
        for t in np.sort(rng.integers(0, shape[0], size=count)):
            x = int(rng.integers(0, shape[1]))
            v = int(rng.integers(-5, 9))
            table.append((int(t), x), v)
            dense[int(t), x] += v
        for _ in range(10):
            box = random_box(rng, shape)
            assert table.range_sum(box) == brute_box_sum(dense, box)

    def test_sorted_scan_band_narrows_cost(self):
        counter = CostCounter()
        table = FactTable(("t", "x"), counter=counter)
        for t in range(1000):
            table.append((t, t % 10), 1)
        counter.reset()
        table.range_sum(Box((100, 0), (110, 9)))
        narrow = counter.cell_reads
        counter.reset()
        table.range_sum(Box((0, 0), (999, 9)))
        full = counter.cell_reads
        assert narrow == 11
        assert full == 1000
        assert table.scan_cost(Box((100, 0), (110, 9))) == 11


class TestROLAPSlices:
    def test_snapshot_is_watermark(self):
        structure = ROLAPSliceStructure(1)
        structure.update(3, 10)
        old = structure.snapshot()
        structure.update(3, 5)
        assert old.range_sum(0, 9) == 10
        assert structure.range_sum(0, 9) == 15

    def test_scalar_and_tuple_cells(self):
        structure = ROLAPSliceStructure(1)
        structure.update((4,), 2)
        structure.update(4, 3)
        assert structure.range_sum((4,), (4,)) == 5
        with pytest.raises(DomainError):
            structure.update((1, 2), 1)

    def test_multidimensional_slices(self):
        structure = ROLAPSliceStructure(2)
        structure.update((1, 2), 7)
        structure.update((3, 4), 5)
        assert structure.range_sum((0, 0), (9, 9)) == 12
        assert structure.range_sum((1, 2), (1, 2)) == 7

    def test_with_update_overlay(self):
        structure = ROLAPSliceStructure(1)
        structure.update(2, 10)
        snapshot = structure.snapshot().with_update((5,), 3)
        assert snapshot.range_sum(0, 9) == 13
        assert snapshot.range_sum(5, 5) == 3
        assert structure.range_sum(0, 9) == 10
        chained = snapshot.with_update((5,), 4)
        assert chained.range_sum(5, 5) == 7
        assert snapshot.range_sum(5, 5) == 3


class TestFrameworkOverROLAP:
    def test_matches_dense_reference(self):
        shape = (30, 15)
        agg = AppendOnlyAggregator(
            slice_factory=lambda: ROLAPSliceStructure(1), ndim=2
        )
        rng = np.random.default_rng(130)
        dense = np.zeros(shape, dtype=np.int64)
        for t in np.sort(rng.integers(0, shape[0], size=150)):
            x = int(rng.integers(0, shape[1]))
            v = int(rng.integers(-4, 8))
            agg.update((int(t), x), v)
            dense[int(t), x] += v
        for _ in range(25):
            box = random_box(rng, shape)
            assert agg.query(box) == brute_box_sum(dense, box)

    def test_out_of_order_and_drain(self):
        from repro.workloads.streams import interleave_out_of_order

        shape = (20, 8)
        agg = AppendOnlyAggregator(
            slice_factory=lambda: ROLAPSliceStructure(1),
            ndim=2,
            out_of_order=True,
        )
        rng = np.random.default_rng(131)
        dense = np.zeros(shape, dtype=np.int64)
        updates = []
        for t in np.sort(rng.integers(0, shape[0], size=80)):
            x = int(rng.integers(0, shape[1]))
            updates.append(((int(t), x), int(rng.integers(1, 6))))
        for point, delta in interleave_out_of_order(updates, 0.25, seed=3):
            agg.update(point, delta)
            dense[point] += delta
        boxes = [random_box(rng, shape) for _ in range(10)]
        for box in boxes:
            assert agg.query(box) == brute_box_sum(dense, box)
        agg.drain()
        for box in boxes:
            assert agg.query(box) == brute_box_sum(dense, box)

    def test_multidim_rolap_slices_in_framework(self):
        shape = (12, 6, 6)
        agg = AppendOnlyAggregator(
            slice_factory=lambda: ROLAPSliceStructure(2), ndim=3
        )
        rng = np.random.default_rng(132)
        dense = np.zeros(shape, dtype=np.int64)
        for t in np.sort(rng.integers(0, shape[0], size=90)):
            cell = (int(rng.integers(0, 6)), int(rng.integers(0, 6)))
            agg.update((int(t),) + cell, 2)
            dense[(int(t),) + cell] += 2
        for _ in range(15):
            box = random_box(rng, shape)
            assert agg.query(box) == brute_box_sum(dense, box)
