"""Property suite for tier-backed approximate answering.

The contract of :meth:`TieredCube.query_many_approx` is *soundness*: for
any randomly demoted cube and any box, the reported interval must
contain the exact answer (pinned against an undemoted oracle), and the
answer must be exact -- ``lo == hi`` -- whenever every demoted prefix
floors onto a retained rollup boundary.  A regression class pins the
resident-prefix fall-through (bit-identical to the exact path) and the
``log-info`` CLI on a tiered directory with zero demote records.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Box
from repro.ecube.buffered import BufferedEvolvingDataCube
from repro.retention import (
    Estimate,
    RollupTier,
    TierSpec,
    TieredCube,
    bracket_prefix,
    estimate_prefix,
)

SHAPE = (4, 3)
TIERS = [
    {"name": "hour", "granularity": 4, "horizon": 16},
    {"name": "day", "granularity": 16, "horizon": None},
]


def _paired_cubes(tmp_path, updates):
    oracle = BufferedEvolvingDataCube(SHAPE)
    tiered = TieredCube(BufferedEvolvingDataCube(SHAPE), TIERS, tmp_path / "t")
    for point, delta in updates:
        oracle.update(point, delta)
        tiered.update(point, delta)
    return oracle, tiered


@st.composite
def demoted_workloads(draw):
    num_times = draw(st.integers(8, 48))
    n_updates = draw(st.integers(5, 60))
    updates = []
    for _ in range(n_updates):
        point = (draw(st.integers(0, num_times - 1)),) + tuple(
            draw(st.integers(0, n - 1)) for n in SHAPE
        )
        updates.append((point, draw(st.integers(1, 9))))
    horizon = draw(st.integers(2, num_times))
    boxes = []
    for _ in range(draw(st.integers(1, 5))):
        t1 = draw(st.integers(0, num_times - 1))
        t2 = draw(st.integers(t1, num_times - 1))
        lower, upper = [], []
        for n in SHAPE:
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(a, n - 1))
            lower.append(a)
            upper.append(b)
        boxes.append(Box((t1, *lower), (t2, *upper)))
    return updates, horizon, boxes


class TestSoundBounds:
    @settings(max_examples=40)
    @given(workload=demoted_workloads())
    def test_bounds_always_contain_exact(self, workload):
        updates, horizon, boxes = workload
        # hypothesis examples outlive function-scoped fixtures: give
        # every generated cube its own tile directory
        with tempfile.TemporaryDirectory() as tmp:
            oracle, tiered = _paired_cubes(Path(tmp), updates)
            tiered.demote_before(horizon)
            exact = oracle.query_many(boxes)
            estimates = tiered.query_many_approx(boxes)
            for box, value, estimate in zip(boxes, exact, estimates):
                assert estimate.lo <= value <= estimate.hi, (
                    box, estimate, value,
                )
                if estimate.exact:
                    assert estimate.lo == value
                    assert estimate.estimate == float(value)
                else:
                    assert estimate.lo <= estimate.estimate <= estimate.hi

    @settings(max_examples=20)
    @given(workload=demoted_workloads())
    def test_metered_mode_matches_fast_mode(self, workload):
        updates, horizon, boxes = workload
        with tempfile.TemporaryDirectory() as tmp:
            _, tiered = _paired_cubes(Path(tmp), updates)
            tiered.demote_before(horizon)
            assert tiered.query_many_approx(
                boxes, mode="fast"
            ) == tiered.query_many_approx(boxes, mode="metered")

    def test_exact_when_prefix_floors_on_retained_boundary(self, tmp_path):
        # one update at every instant: occurring times are dense, so a
        # bucket boundary (granularity 4 -> times 3, 7, 11, ...) is
        # always retained after the demote
        updates = [((t, 1, 1), t + 1) for t in range(32)]
        oracle, tiered = _paired_cubes(tmp_path, updates)
        tiered.demote_before(30)
        boundaries = [t for tier in tiered.tiers for t in tier.times]
        assert boundaries
        for t2 in boundaries:
            box = Box((0, 0, 0), (t2, 3, 2))
            estimate = tiered.query_approx(box)
            assert estimate.exact
            assert estimate.lo == oracle.query_many([box])[0]

    def test_non_boundary_demoted_prefix_is_a_true_interval(self, tmp_path):
        updates = [((t, 0, 0), 5) for t in range(32)]
        oracle, tiered = _paired_cubes(tmp_path, updates)
        tiered.demote_before(30)
        # evict the finest tier so mid-bucket floors need estimation
        retained = set()
        for tier in tiered.tiers:
            retained.update(tier.times)
        target = next(t for t in range(1, 29) if t not in retained)
        box = Box((0, 0, 0), (target, 3, 2))
        estimate = tiered.query_approx(box)
        assert not estimate.exact
        assert estimate.contains(oracle.query_many([box])[0])


class TestResidentFallThrough:
    def test_resident_prefix_is_bit_identical_to_exact_path(self, tmp_path):
        updates = [
            ((t, int(t % SHAPE[0]), int(t % SHAPE[1])), t + 1)
            for t in range(40)
        ]
        oracle, tiered = _paired_cubes(tmp_path, updates)
        tiered.demote_before(20)
        watermark = tiered.demoted_through
        live_boxes = [
            Box((watermark, 0, 0), (39, 3, 2)),
            Box((watermark + 3, 1, 0), (watermark + 9, 2, 2)),
            Box((39, 0, 0), (39, 3, 2)),
        ]
        estimates = tiered.query_many_approx(live_boxes)
        exact = tiered.query_many(live_boxes)
        assert exact == oracle.query_many(live_boxes)
        for estimate, value in zip(estimates, exact):
            assert estimate == Estimate.of(value)

    def test_undemoted_cube_is_all_exact(self, tmp_path):
        updates = [((t, 0, 0), 2) for t in range(10)]
        oracle, tiered = _paired_cubes(tmp_path, updates)
        box = Box((0, 0, 0), (9, 3, 2))
        assert tiered.query_approx(box) == Estimate.of(
            oracle.query_many([box])[0]
        )


class TestEstimatePrimitives:
    def test_bracket_prefix_picks_tightest_sides(self):
        fine = RollupTier(TierSpec("fine", 4))
        fine._times = [3, 7, 11]
        fine._slices = [np.full(SHAPE, v, dtype=np.int64) for v in (1, 2, 3)]
        coarse = RollupTier(TierSpec("coarse", 16))
        coarse._times = [15]
        coarse._slices = [np.full(SHAPE, 4, dtype=np.int64)]
        lo, hi = bracket_prefix([fine, coarse], 9)
        assert lo[0] == 7 and hi[0] == 11
        lo, hi = bracket_prefix([fine, coarse], 13)
        assert lo[0] == 11 and hi[0] == 15
        # the planner's carried newest slice can tighten either side
        lo, hi = bracket_prefix(
            [fine, coarse], 13, 14, np.full(SHAPE, 9, dtype=np.int64)
        )
        assert hi[0] == 14
        lo, hi = bracket_prefix([fine, coarse], 2)
        assert lo is None and hi[0] == 3

    def test_estimate_prefix_interpolates_within_bounds(self):
        ps_lo = np.full(SHAPE, 2, dtype=np.int64)
        ps_hi = np.full(SHAPE, 10, dtype=np.int64)
        est = estimate_prefix((4, ps_lo), (8, ps_hi), 6, (0, 0), (0, 0))
        assert (est.lo, est.hi) == (2, 10)
        assert est.estimate == pytest.approx(6.0)
        assert est.lo <= est.estimate <= est.hi

    def test_estimate_prefix_no_floor_uses_zero(self):
        ps_hi = np.full(SHAPE, 8, dtype=np.int64)
        est = estimate_prefix(None, (7, ps_hi), 3, (0, 0), (0, 0))
        assert (est.lo, est.hi) == (0, 8)

    def test_estimate_prefix_exact_floor(self):
        # the slices are *cumulative* PS; the corner gather of a
        # constant slice with all-zero lowers is just the top corner
        ps = np.full(SHAPE, 5, dtype=np.int64)
        est = estimate_prefix((6, ps), None, 6, (0, 0), (1, 1))
        assert est == Estimate.of(5)


class TestLogInfoRegression:
    def _durable_tiered(self, tmp_path, demote_to=None):
        from repro.durability import DurableCube

        directory = tmp_path / "cube"
        cube = DurableCube(SHAPE, directory, buffered=True, tiers=TIERS)
        try:
            for t in range(24):
                cube.update((t, 0, 0), 1)
            if demote_to is not None:
                cube.demote_before(demote_to)
            cube.checkpoint()
        finally:
            cube.close()
        return directory

    def test_log_info_with_zero_demote_records(self, tmp_path, capsys):
        """A tiered manifest without any demote must report
        ``demoted_through: null``, not raise."""
        from repro.__main__ import main

        directory = self._durable_tiered(tmp_path)
        assert main(["log-info", str(directory)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["tiers"] == TIERS
        assert info["demoted_through"] is None
        assert info["record_counts"].get("demote", 0) == 0

    def test_log_info_reports_checkpointed_watermark(self, tmp_path, capsys):
        from repro.__main__ import main

        directory = self._durable_tiered(tmp_path, demote_to=12)
        assert main(["log-info", str(directory)]) == 0
        info = json.loads(capsys.readouterr().out)
        # the checkpoint compacted the WAL (no demote record survives in
        # the log); the watermark must still surface from the archive
        assert info["demoted_through"] == 11
