"""Tests for the fat-node multiversion array."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AppendOrderError, DomainError
from repro.trees.fat_node import FatNodeArray


class TestBasics:
    def test_default_zero(self):
        array = FatNodeArray((4, 4))
        assert array.read((2, 2), 10) == 0
        assert array.read_latest((2, 2)) == 0

    def test_write_then_read_versions(self):
        array = FatNodeArray((8,))
        array.write((3,), 1, 10)
        array.write((3,), 4, 20)
        assert array.read((3,), 0) == 0
        assert array.read((3,), 1) == 10
        assert array.read((3,), 3) == 10
        assert array.read((3,), 4) == 20
        assert array.read((3,), 99) == 20

    def test_same_version_overwrites(self):
        array = FatNodeArray((8,))
        array.write((3,), 1, 10)
        array.write((3,), 1, 11)
        assert array.read((3,), 1) == 11
        assert array.versions_of((3,)) == (1,)

    def test_add_accumulates(self):
        array = FatNodeArray((8,))
        array.add((0,), 1, 5)
        array.add((0,), 2, 7)
        assert array.read((0,), 1) == 5
        assert array.read((0,), 2) == 12

    def test_partial_persistence_only(self):
        array = FatNodeArray((8,))
        array.write((3,), 5, 10)
        with pytest.raises(AppendOrderError):
            array.write((4,), 4, 1)

    def test_bounds_checked(self):
        array = FatNodeArray((4, 4))
        with pytest.raises(DomainError):
            array.read((4, 0), 0)
        with pytest.raises(DomainError):
            array.write((0,), 0, 1)

    def test_invalid_shape(self):
        with pytest.raises(DomainError):
            FatNodeArray((0,))


class TestModel:
    @settings(max_examples=40, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 30), st.integers(-9, 9)),
            min_size=1,
            max_size=120,
        )
    )
    def test_matches_versioned_dict_model(self, writes):
        # enforce non-decreasing versions (partial persistence)
        writes = sorted(writes, key=lambda w: w[1])
        array = FatNodeArray((8,))
        history: dict[int, list[tuple[int, int]]] = {}
        for cell, version, value in writes:
            array.write((cell,), version, value)
            history.setdefault(cell, []).append((version, value))
        for cell in range(8):
            timeline = history.get(cell, [])
            for probe in range(-1, 32):
                expected = 0
                for version, value in timeline:
                    if version <= probe:
                        expected = value
                assert array.read((cell,), probe) == expected

    def test_storage_linear_in_updates(self):
        array = FatNodeArray((4,))
        for version in range(50):
            array.write((version % 4,), version, version)
        assert array.storage_cells() == 50

    def test_reads_cost_probes(self):
        array = FatNodeArray((2,))
        for version in range(64):
            array.write((0,), version, version)
        before = array.probes
        array.read((0,), 32)
        # binary search cost ~ log2(64) probes, not constant
        assert array.probes - before >= 6
