"""Tests for data aging (Section 7's by-product claim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import AgedOutError
from repro.core.types import Box
from repro.ecube.ecube import EvolvingDataCube

from tests.conftest import brute_box_sum, random_box
from tests.test_ecube_cube import random_append_stream


@pytest.fixture
def aged_cube():
    rng = np.random.default_rng(95)
    shape = (40, 8, 8)
    cube = EvolvingDataCube(shape[1:], num_times=shape[0])
    dense = np.zeros(shape, dtype=np.int64)
    for point, delta in random_append_stream(rng, shape, 400):
        cube.update(point, delta)
        dense[point] += delta
    retired = cube.retire_before(20)
    return cube, dense, retired, rng


class TestRetirement:
    def test_retires_strictly_older_slices_keeping_boundary(self, aged_cube):
        cube, _dense, retired, _rng = aged_cube
        boundary_index = cube.directory.floor_index(19)
        assert retired == boundary_index  # all but the boundary instance
        assert cube.retired_instances == boundary_index

    def test_empty_cube_noop(self):
        cube = EvolvingDataCube((4,))
        assert cube.retire_before(10) == 0

    def test_idempotent(self, aged_cube):
        cube, _dense, _retired, _rng = aged_cube
        assert cube.retire_before(20) == 0
        assert cube.retire_before(10) == 0  # cannot un-retire

    def test_queries_after_boundary_unchanged(self, aged_cube):
        cube, dense, _retired, rng = aged_cube
        for _ in range(30):
            box = random_box(rng, (40, 8, 8))
            lower = (max(box.lower[0], 20),) + box.lower[1:]
            upper = (max(box.upper[0], 20),) + box.upper[1:]
            box = Box(lower, upper)
            assert cube.query(box) == brute_box_sum(dense, box)

    def test_full_history_prefix_still_answerable(self, aged_cube):
        """Aggregates over all retired data are retained for free."""
        cube, dense, _retired, _rng = aged_cube
        box = Box((0, 0, 0), (39, 7, 7))
        assert cube.query(box) == dense.sum()
        box = Box((0, 2, 2), (25, 6, 6))
        assert cube.query(box) == brute_box_sum(dense, box)

    def test_queries_into_retired_region_rejected(self, aged_cube):
        cube, _dense, _retired, _rng = aged_cube
        with pytest.raises(AgedOutError):
            cube.query(Box((5, 0, 0), (30, 7, 7)))
        with pytest.raises(AgedOutError):
            cube.query(Box((2, 0, 0), (10, 7, 7)))

    def test_updates_continue_after_retirement(self, aged_cube):
        cube, dense, _retired, rng = aged_cube
        # keep appending; lazy copies must skip retired slices gracefully
        for t in range(40, 60):
            cell = (int(rng.integers(0, 8)), int(rng.integers(0, 8)))
            cube.num_times = 60
            cube.update((t,) + cell, 3)
        box = Box((20, 0, 0), (59, 7, 7))
        expected = int(dense[20:].sum()) + 20 * 3
        assert cube.query(box) == expected

    def test_progressive_aging(self):
        cube = EvolvingDataCube((4,), num_times=30)
        dense = np.zeros((30, 4), dtype=np.int64)
        for t in range(30):
            cube.update((t, t % 4), t + 1)
            dense[t, t % 4] = t + 1
        assert cube.retire_before(10) == 9
        assert cube.retire_before(20) == 10
        assert cube.query(Box((0, 0), (29, 3))) == dense.sum()
        assert cube.query(Box((20, 0), (29, 3))) == dense[20:].sum()
        with pytest.raises(AgedOutError):
            cube.query(Box((15, 0), (29, 3)))
