"""Tests for multiple measure attributes (MeasureCube)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DomainError, OperatorError
from repro.core.measures import MeasureCube
from repro.core.types import Box
from repro.ecube.ecube import EvolvingDataCube


def make_cube():
    return MeasureCube(
        lambda: EvolvingDataCube((8, 8), num_times=16),
        measures=("revenue", "units"),
    )


class TestConstruction:
    def test_needs_measures(self):
        with pytest.raises(DomainError):
            MeasureCube(lambda: None, measures=())

    def test_duplicates_rejected(self):
        with pytest.raises(DomainError):
            MeasureCube(lambda: None, measures=("a", "a"))

    def test_count_collision_rejected(self):
        with pytest.raises(DomainError):
            MeasureCube(lambda: None, measures=("count",))


class TestUpdatesAndQueries:
    def test_partial_measures_per_update(self):
        cube = make_cube()
        cube.update((0, 1, 1), revenue=100, units=2)
        cube.update((1, 1, 1), revenue=50)
        box = Box((0, 0, 0), (15, 7, 7))
        assert cube.query(box, "revenue") == 150
        assert cube.query(box, "units") == 2
        assert cube.query(box, "count") == 2

    def test_unknown_measure_rejected(self):
        cube = make_cube()
        with pytest.raises(DomainError):
            cube.update((0, 0, 0), price=1)
        cube.update((0, 0, 0), revenue=1)
        with pytest.raises(DomainError):
            cube.query(Box((0, 0, 0), (15, 7, 7)), "price")

    def test_query_all(self):
        cube = make_cube()
        cube.update((0, 2, 2), revenue=10, units=1)
        result = cube.query_all(Box((0, 0, 0), (0, 7, 7)))
        assert result == {"revenue": 10, "units": 1, "count": 1}

    def test_matches_reference_per_measure(self):
        cube = make_cube()
        rng = np.random.default_rng(31)
        revenue = np.zeros((16, 8, 8), dtype=np.int64)
        units = np.zeros((16, 8, 8), dtype=np.int64)
        count = np.zeros((16, 8, 8), dtype=np.int64)
        times = np.sort(rng.integers(0, 16, size=120))
        for t in times:
            point = (int(t), int(rng.integers(0, 8)), int(rng.integers(0, 8)))
            r, u = int(rng.integers(1, 100)), int(rng.integers(1, 5))
            cube.update(point, revenue=r, units=u)
            revenue[point] += r
            units[point] += u
            count[point] += 1
        for _ in range(15):
            a, b = sorted(int(v) for v in rng.integers(0, 16, size=2))
            box = Box((a, 0, 0), (b, 7, 7))
            assert cube.query(box, "revenue") == revenue[a : b + 1].sum()
            assert cube.query(box, "units") == units[a : b + 1].sum()
            assert cube.query(box, "count") == count[a : b + 1].sum()


class TestAverage:
    def test_average_as_sum_and_count(self):
        cube = make_cube()
        cube.update((0, 1, 1), revenue=100)
        cube.update((1, 1, 1), revenue=50)
        cube.update((2, 5, 5), revenue=10)
        box = Box((0, 0, 0), (1, 7, 7))
        assert cube.average(box, "revenue") == 75.0

    def test_empty_average_rejected(self):
        cube = make_cube()
        cube.update((0, 1, 1), revenue=100)
        with pytest.raises(OperatorError):
            cube.average(Box((5, 0, 0), (9, 7, 7)), "revenue")

    def test_average_unavailable_without_count(self):
        cube = MeasureCube(
            lambda: EvolvingDataCube((4,), num_times=4),
            measures=("x",),
            count_measure=None,
        )
        cube.update((0, 0), x=3)
        with pytest.raises(OperatorError):
            cube.average(Box((0, 0), (3, 3)), "x")

    def test_update_without_values_needs_count(self):
        cube = MeasureCube(
            lambda: EvolvingDataCube((4,), num_times=4),
            measures=("x",),
            count_measure=None,
        )
        with pytest.raises(DomainError):
            cube.update((0, 0))


class TestOlapIntegration:
    def test_backend_feeds_cube_view(self):
        from repro.olap import CubeView, Dimension

        cube = make_cube()
        cube.update((0, 1, 1), revenue=10)
        cube.update((3, 2, 2), revenue=20)
        view = CubeView(
            cube.backend("revenue"),
            [Dimension("day", 16), Dimension("store", 8), Dimension("product", 8)],
        )
        assert view.aggregate() == 30
        assert view.aggregate(day=(0, 2)) == 10
