"""Tests for the slice cache (timestamps, histogram, roving pointer)."""

from __future__ import annotations

import pytest

from repro.core.errors import DomainError
from repro.ecube.cache import SliceCache


@pytest.fixture
def cache(counter):
    return SliceCache((4, 4), counter)


class TestBasics:
    def test_initial_state(self, cache):
        assert cache.last_index == 0
        assert cache.pending == 0
        assert cache.incomplete_instances() == 0
        assert cache.read((0, 0)) == (0, 0)

    def test_invalid_shape(self, counter):
        with pytest.raises(DomainError):
            SliceCache((0, 4), counter)

    def test_reads_and_writes_counted(self, counter):
        cache = SliceCache((4, 4), counter)
        cache.read((1, 1))
        cache.apply_delta((1, 1), 5)
        assert counter.cell_reads == 1
        assert counter.cell_writes == 1
        assert cache.peek_value((1, 1)) == 5

    def test_peek_does_not_count(self, counter):
        cache = SliceCache((4, 4), counter)
        cache.peek_stamp((0, 0))
        cache.peek_value((0, 0))
        assert counter.cell_reads == 0


class TestStampHistogram:
    def test_new_time_makes_cells_pending(self, cache):
        cache.notice_new_time()
        assert cache.last_index == 1
        assert cache.pending == 16
        assert cache.incomplete_instances() == 1

    def test_restamp_reduces_pending(self, cache):
        cache.notice_new_time()
        for x in range(4):
            for y in range(4):
                cache.restamp((x, y), 1)
        assert cache.pending == 0
        assert cache.incomplete_instances() == 0

    def test_stamp_cannot_regress(self, cache):
        cache.notice_new_time()
        cache.restamp((0, 0), 1)
        with pytest.raises(DomainError):
            cache.restamp((0, 0), 0)

    def test_incomplete_counts_span_from_min_stamp(self, cache):
        for _ in range(5):
            cache.notice_new_time()
        assert cache.incomplete_instances() == 5  # all cells at stamp 0
        for x in range(4):
            for y in range(4):
                cache.restamp((x, y), 3)
        assert cache.incomplete_instances() == 2  # stamps at 3, last at 5

    def test_min_stamp_index_advances(self, cache):
        cache.notice_new_time()
        cache.notice_new_time()
        assert cache.min_stamp_index() == 0
        for x in range(4):
            for y in range(4):
                cache.restamp((x, y), 1)
        assert cache.min_stamp_index() == 1


class TestRover:
    def test_rover_wraps(self, cache):
        seen = set()
        for _ in range(16):
            seen.add(cache.rover_cell())
            cache.rover_advance()
        assert len(seen) == 16
        assert cache.rover_cell() == (0, 0)  # wrapped around
