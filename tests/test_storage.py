"""Tests for the simulated external-memory layer."""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.metrics import CostCounter
from repro.storage.layout import cells_per_page, pages_for_cells, rtree_leaf_capacity
from repro.storage.pages import PageAccessTracker, PagedArray


class TestLayout:
    def test_paper_constants(self):
        # "a page fits 2048 cells (since only the measure values of 4 bytes
        # size each are stored)"
        assert cells_per_page(8192, 4) == 2048

    def test_pages_for_cells(self):
        assert pages_for_cells(0) == 0
        assert pages_for_cells(1) == 1
        assert pages_for_cells(2048) == 1
        assert pages_for_cells(2049) == 2

    def test_rtree_leaf_capacity_smaller_than_cell_capacity(self):
        for ndim in (2, 4, 6):
            assert rtree_leaf_capacity(ndim) < cells_per_page()

    def test_rtree_leaf_capacity_paper_numbers(self):
        # 6 dims x 2 bytes + 4-byte measure = 16 bytes -> 512 entries
        assert rtree_leaf_capacity(6, 8192) == 512

    def test_errors(self):
        with pytest.raises(StorageError):
            cells_per_page(2, 4)
        with pytest.raises(StorageError):
            pages_for_cells(-1)
        with pytest.raises(StorageError):
            rtree_leaf_capacity(0)
        with pytest.raises(StorageError):
            rtree_leaf_capacity(10_000, page_size=8)


class TestPagedArray:
    def test_row_major_addressing(self):
        array = PagedArray((3, 4), page_size=16, cell_size=4)  # 4 cells/page
        assert array.linear_index((0, 0)) == 0
        assert array.linear_index((1, 0)) == 4
        assert array.linear_index((2, 3)) == 11
        assert array.page_of((0, 3)) == 0
        assert array.page_of((1, 0)) == 1
        assert array.num_pages == 3

    def test_read_write_through_tracker(self):
        array = PagedArray((2, 4), page_size=16, cell_size=4)
        tracker = PageAccessTracker()
        array.write((0, 1), 42, tracker)
        assert array.read((0, 1), tracker) == 42
        # same page: one distinct page overall
        assert tracker.page_accesses == 1

    def test_tracker_dedupes_within_operation(self):
        array = PagedArray((2, 8), page_size=16, cell_size=4)
        tracker = PageAccessTracker()
        for y in range(8):
            array.read((0, y), tracker)  # spans pages 0 and 1
        assert tracker.page_accesses == 2

    def test_flush_to_counter(self):
        array = PagedArray((2, 8), page_size=16, cell_size=4)
        tracker = PageAccessTracker()
        counter = CostCounter()
        array.read((0, 0), tracker)
        array.write((1, 0), 9, tracker)
        flushed = tracker.flush_to(counter)
        assert flushed == 2
        assert counter.page_reads == 1
        assert counter.page_writes == 1
        assert tracker.page_accesses == 0  # reset

    def test_write_page_bulk(self):
        array = PagedArray((16,), page_size=16, cell_size=4)
        tracker = PageAccessTracker()
        written = array.write_page(1, [4, 5, 6, 7], [1, 2, 3, 4], tracker)
        assert written == 4
        assert array.cells[4:8].tolist() == [1, 2, 3, 4]
        assert tracker.page_accesses == 1

    def test_write_page_rejects_foreign_cells(self):
        array = PagedArray((16,), page_size=16, cell_size=4)
        tracker = PageAccessTracker()
        with pytest.raises(StorageError):
            array.write_page(1, [0], [9], tracker)

    def test_distinct_arrays_have_distinct_page_spaces(self):
        a = PagedArray((4,), page_size=16, cell_size=4)
        b = PagedArray((4,), page_size=16, cell_size=4)
        tracker = PageAccessTracker()
        a.read((0,), tracker)
        b.read((0,), tracker)
        assert tracker.page_accesses == 2  # page 0 of two different stores

    def test_invalid_shape(self):
        with pytest.raises(StorageError):
            PagedArray((0, 2))

    def test_arity_checked(self):
        array = PagedArray((4, 4))
        with pytest.raises(StorageError):
            array.linear_index((1,))
