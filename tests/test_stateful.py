"""Hypothesis stateful tests: the cubes against a dense numpy model.

A single rule-based machine drives the in-memory eCube, the disk eCube and
the general framework through interleaved appends, queries, conversions
and (for the framework) out-of-order updates and drains, checking every
answer against a dense reference after every step.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.framework import AppendOnlyAggregator
from repro.core.types import Box
from repro.ecube.disk import DiskEvolvingDataCube
from repro.ecube.ecube import EvolvingDataCube

TIME_DOMAIN = 24
CELL_DOMAIN = 6


class CubeMachine(RuleBasedStateMachine):
    """Drives both eCube variants in lockstep with a dense model."""

    @initialize(copy_budget=st.sampled_from([0, 4, None]))
    def setup(self, copy_budget):
        self.memory = EvolvingDataCube(
            (CELL_DOMAIN, CELL_DOMAIN),
            num_times=TIME_DOMAIN,
            copy_budget=copy_budget,
        )
        self.disk = DiskEvolvingDataCube(
            (CELL_DOMAIN, CELL_DOMAIN), num_times=TIME_DOMAIN, page_size=64
        )
        self.dense = np.zeros(
            (TIME_DOMAIN, CELL_DOMAIN, CELL_DOMAIN), dtype=np.int64
        )
        self.clock = 0

    @rule(
        advance=st.integers(0, 3),
        x=st.integers(0, CELL_DOMAIN - 1),
        y=st.integers(0, CELL_DOMAIN - 1),
        delta=st.integers(-5, 9),
    )
    def append(self, advance, x, y, delta):
        self.clock = min(TIME_DOMAIN - 1, self.clock + advance)
        point = (self.clock, x, y)
        self.memory.update(point, delta)
        self.disk.update(point, delta)
        self.dense[point] += delta

    @precondition(lambda self: self.memory.num_slices > 0)
    @rule(data=st.data())
    def query(self, data):
        lows = [
            data.draw(st.integers(0, n - 1))
            for n in (TIME_DOMAIN, CELL_DOMAIN, CELL_DOMAIN)
        ]
        highs = [
            data.draw(st.integers(low, n - 1))
            for low, n in zip(lows, (TIME_DOMAIN, CELL_DOMAIN, CELL_DOMAIN))
        ]
        box = Box(tuple(lows), tuple(highs))
        expected = int(
            self.dense[
                box.lower[0] : box.upper[0] + 1,
                box.lower[1] : box.upper[1] + 1,
                box.lower[2] : box.upper[2] + 1,
            ].sum()
        )
        assert self.memory.query(box) == expected
        assert self.disk.query(box) == expected

    @invariant()
    def totals_agree(self):
        if self.memory.num_slices:
            assert self.memory.total() == int(self.dense.sum())


class FrameworkMachine(RuleBasedStateMachine):
    """Drives the general framework with out-of-order updates and drains."""

    def __init__(self):
        super().__init__()
        self.agg = AppendOnlyAggregator(ndim=2, out_of_order=True)
        self.dense = np.zeros((32, 16), dtype=np.int64)

    @rule(t=st.integers(0, 31), x=st.integers(0, 15), delta=st.integers(-4, 8))
    def update(self, t, x, delta):
        self.agg.update((t, x), delta)
        self.dense[t, x] += delta

    @rule(limit=st.one_of(st.none(), st.integers(1, 5)))
    def drain(self, limit):
        self.agg.drain(limit)

    @rule(data=st.data())
    def query(self, data):
        t_low = data.draw(st.integers(0, 31))
        t_up = data.draw(st.integers(t_low, 31))
        x_low = data.draw(st.integers(0, 15))
        x_up = data.draw(st.integers(x_low, 15))
        expected = int(self.dense[t_low : t_up + 1, x_low : x_up + 1].sum())
        assert self.agg.query(Box((t_low, x_low), (t_up, x_up))) == expected

    @invariant()
    def total_matches(self):
        assert self.agg.query(Box((0, 0), (31, 15))) == int(self.dense.sum())


TestCubeMachine = CubeMachine.TestCase
TestCubeMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestFrameworkMachine = FrameworkMachine.TestCase
TestFrameworkMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
