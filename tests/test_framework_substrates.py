"""The framework over every slice substrate, plus protocol edge cases.

One parametrized battery: the same append-only stream and query set must
produce identical answers whichever Table 1 structure instantiates
``R_{d-1}`` -- persistent tree, MVBT, ROLAP fact table, Z-order (1-D), or
naive deep copies.  This is the framework's portability claim made
executable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DomainError
from repro.core.framework import (
    AppendOnlyAggregator,
    CopySnapshotStructure,
    MVBTSliceStructure,
    TreeSliceStructure,
)
from repro.core.types import Box
from repro.rolap.slices import ROLAPSliceStructure
from repro.trees.zorder import ZOrderSliceStructure

from tests.conftest import brute_box_sum, random_box

SHAPE = (40, 24)

FACTORIES = {
    "persistent-tree": TreeSliceStructure,
    "mvbt": MVBTSliceStructure,
    "rolap": lambda: ROLAPSliceStructure(1),
    "zorder": lambda: ZOrderSliceStructure((SHAPE[1],)),
}


def stream(seed=210, count=180):
    rng = np.random.default_rng(seed)
    updates = []
    for t in np.sort(rng.integers(0, SHAPE[0], size=count)):
        updates.append(
            ((int(t), int(rng.integers(0, SHAPE[1]))), int(rng.integers(-4, 8)))
        )
    return updates, rng


@pytest.mark.parametrize("name", sorted(FACTORIES))
class TestEverySubstrateAgrees:
    def test_matches_dense_reference(self, name):
        factory = FACTORIES[name]
        agg = AppendOnlyAggregator(slice_factory=factory, ndim=2)
        dense = np.zeros(SHAPE, dtype=np.int64)
        updates, rng = stream()
        for point, delta in updates:
            agg.update(point, delta)
            dense[point] += delta
        for _ in range(25):
            box = random_box(rng, SHAPE)
            assert agg.query(box) == brute_box_sum(dense, box), (name, box)

    def test_interleaved(self, name):
        factory = FACTORIES[name]
        agg = AppendOnlyAggregator(slice_factory=factory, ndim=2)
        dense = np.zeros(SHAPE, dtype=np.int64)
        updates, rng = stream(seed=211, count=100)
        for index, (point, delta) in enumerate(updates):
            agg.update(point, delta)
            dense[point] += delta
            if index % 5 == 0:
                box = random_box(rng, SHAPE)
                assert agg.query(box) == brute_box_sum(dense, box)


class TestNaiveCopyAgrees:
    def test_deep_copy_of_fact_table(self):
        agg = AppendOnlyAggregator(
            slice_factory=lambda: CopySnapshotStructure(
                ROLAPSliceStructure(1)
            ),
            ndim=2,
        )
        dense = np.zeros(SHAPE, dtype=np.int64)
        updates, rng = stream(seed=212, count=60)
        for point, delta in updates:
            agg.update(point, delta)
            dense[point] += delta
        for _ in range(10):
            box = random_box(rng, SHAPE)
            assert agg.query(box) == brute_box_sum(dense, box)


class TestProtocolEdges:
    def test_copy_snapshot_cannot_drain(self):
        class Plain:
            def __init__(self):
                self.data = {}

            def update(self, cell, delta):
                key = cell[0] if isinstance(cell, tuple) else cell
                self.data[key] = self.data.get(key, 0) + delta

            def range_sum(self, lower, upper):
                low = lower[0] if isinstance(lower, tuple) else lower
                up = upper[0] if isinstance(upper, tuple) else upper
                return sum(v for k, v in self.data.items() if low <= k <= up)

        agg = AppendOnlyAggregator(
            slice_factory=lambda: CopySnapshotStructure(Plain()),
            ndim=2,
            out_of_order=True,
        )
        agg.update((0, 1), 1)
        agg.update((5, 1), 1)
        agg.update((2, 1), 1)  # buffered
        with pytest.raises(DomainError, match="with_update"):
            agg.drain()

    def test_query_arity_checked(self):
        agg = AppendOnlyAggregator(ndim=2)
        agg.update((0, 0), 1)
        with pytest.raises(DomainError):
            agg.query(Box((0, 0, 0), (1, 1, 1)))

    def test_mvbt_snapshots_are_integers_under_the_hood(self):
        structure = MVBTSliceStructure()
        structure.update(3, 5)
        old = structure.snapshot()
        structure.update(3, 2)
        assert old.range_sum(0, 9) == 5
        assert structure.range_sum(0, 9) == 7
        # a second snapshot freezes the new state independently
        newer = structure.snapshot()
        structure.update(4, 10)
        assert newer.range_sum(0, 9) == 7
        assert old.range_sum(0, 9) == 5
