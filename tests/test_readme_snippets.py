"""The README's code blocks must actually run.

Extracts every fenced ``python`` block from README.md and executes it in a
fresh namespace; documentation that silently rots is worse than none.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_snippets():
    assert len(python_blocks()) >= 3


@pytest.mark.parametrize("index", range(len(python_blocks())))
def test_snippet_executes(index):
    block = python_blocks()[index]
    namespace: dict = {}
    exec(compile(block, f"README.md block {index}", "exec"), namespace)


def test_quickstart_snippet_results_match_comments():
    # the first snippet claims query(...) -> 260; hold it to that
    block = python_blocks()[0]
    namespace: dict = {}
    exec(compile(block, "README.md quickstart", "exec"), namespace)
    cube = namespace["cube"]
    from repro import Box

    assert cube.query(Box((0, 0, 0), (1, 7, 31))) == 260
