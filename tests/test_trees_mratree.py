"""Tests for the multi-resolution aggregate tree (progressive queries)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError
from repro.trees.mratree import MRATree

from tests.conftest import brute_box_sum, random_box


class TestBasics:
    def test_shape_validated(self):
        with pytest.raises(DomainError):
            MRATree(())
        with pytest.raises(DomainError):
            MRATree((0, 4))

    def test_negative_deltas_rejected(self):
        tree = MRATree((8, 8))
        with pytest.raises(DomainError):
            tree.update((1, 1), -1)

    def test_cell_bounds(self):
        tree = MRATree((8, 8))
        with pytest.raises(DomainError):
            tree.update((8, 0), 1)

    def test_exact_queries(self):
        tree = MRATree((8, 8))
        tree.update((2, 3), 5)
        tree.update((6, 7), 2)
        assert tree.range_sum((0, 0), (7, 7)) == 7
        assert tree.range_sum((0, 0), (3, 3)) == 5
        assert tree.range_sum((4, 4), (7, 7)) == 2
        assert tree.total() == 7

    def test_empty_box_after_clip(self):
        tree = MRATree((8, 8))
        tree.update((1, 1), 1)
        assert tree.range_sum((5, 5), (3, 3)) == 0

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_matches_dense_reference(self, data):
        ndim = data.draw(st.integers(1, 3))
        shape = tuple(data.draw(st.integers(2, 9)) for _ in range(ndim))
        count = data.draw(st.integers(1, 60))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        tree = MRATree(shape)
        dense = np.zeros(shape, dtype=np.int64)
        for _ in range(count):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            delta = int(rng.integers(0, 9))
            tree.update(cell, delta)
            dense[cell] += delta
        for _ in range(8):
            box = random_box(rng, shape)
            assert tree.range_sum(box.lower, box.upper) == brute_box_sum(
                dense, box
            )


class TestProgressive:
    @pytest.fixture
    def populated(self):
        rng = np.random.default_rng(81)
        shape = (64, 64)
        tree = MRATree(shape)
        dense = np.zeros(shape, dtype=np.int64)
        for _ in range(800):
            cell = (int(rng.integers(0, 64)), int(rng.integers(0, 64)))
            delta = int(rng.integers(1, 10))
            tree.update(cell, delta)
            dense[cell] += delta
        return tree, dense, rng

    def test_bounds_bracket_and_tighten(self, populated):
        tree, dense, rng = populated
        for _ in range(10):
            box = random_box(rng, (64, 64))
            exact = brute_box_sum(dense, box)
            previous_span = None
            final = None
            for low, high, estimate in tree.progressive_range_sum(
                box.lower, box.upper
            ):
                assert low <= exact <= high
                assert low <= estimate <= high
                span = high - low
                if previous_span is not None:
                    assert span <= previous_span
                previous_span = span
                final = (low, high)
            assert final == (exact, exact)

    def test_progressive_converges_in_few_steps(self, populated):
        tree, dense, rng = populated
        box = random_box(rng, (64, 64))
        exact = brute_box_sum(dense, box)
        steps_to_5_percent = None
        for step, (low, high, _est) in enumerate(
            tree.progressive_range_sum(box.lower, box.upper)
        ):
            if high - low <= 0.05 * max(1, high):
                steps_to_5_percent = step
                break
        assert steps_to_5_percent is not None
        # resolving by largest-aggregate-first converges quickly
        assert steps_to_5_percent <= 200

    def test_query_with_tolerance(self, populated):
        tree, dense, rng = populated
        box = random_box(rng, (64, 64))
        exact = brute_box_sum(dense, box)
        low, high, estimate = tree.query_with_tolerance(
            box.lower, box.upper, tolerance=0.1
        )
        assert low <= exact <= high
        assert (high - low) <= 0.1 * max(1, high)
        exact_low, exact_high, _ = tree.query_with_tolerance(
            box.lower, box.upper, tolerance=0.0
        )
        assert exact_low == exact_high == exact
        with pytest.raises(DomainError):
            tree.query_with_tolerance(box.lower, box.upper, -0.5)

    def test_early_bounds_far_cheaper_than_exact(self, populated):
        tree, _dense, _rng = populated
        box_lower, box_upper = (3, 3), (60, 61)
        tree.node_accesses = 0
        tree.query_with_tolerance(box_lower, box_upper, tolerance=0.25)
        approximate_cost = tree.node_accesses
        tree.node_accesses = 0
        tree.range_sum(box_lower, box_upper)
        exact_cost = tree.node_accesses
        assert approximate_cost < exact_cost
