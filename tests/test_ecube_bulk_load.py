"""Tests for the vectorized initial load (EvolvingDataCube.from_dense)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError
from repro.core.types import Box
from repro.ecube.ecube import EvolvingDataCube

from tests.conftest import brute_box_sum, random_box


class TestFromDense:
    def test_needs_two_dimensions(self):
        with pytest.raises(DomainError):
            EvolvingDataCube.from_dense(np.zeros(8))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_equivalent_to_streaming(self, data):
        ndim = data.draw(st.integers(2, 4))
        shape = tuple(data.draw(st.integers(2, 7)) for _ in range(ndim))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        dense = rng.integers(-3, 7, size=shape)
        bulk = EvolvingDataCube.from_dense(dense)
        for _ in range(8):
            box = random_box(rng, shape)
            assert bulk.query(box) == brute_box_sum(dense, box)

    def test_fully_copied_state(self):
        dense = np.ones((6, 4, 4), dtype=np.int64)
        cube = EvolvingDataCube.from_dense(dense)
        assert cube.incomplete_historic_instances() == 0
        assert cube.num_slices == 6
        assert cube.occurring_times() == tuple(range(6))

    def test_appends_resume_after_bulk_load(self):
        rng = np.random.default_rng(160)
        dense = rng.integers(0, 5, size=(10, 6, 6))
        cube = EvolvingDataCube.from_dense(dense)
        extended = np.zeros((16, 6, 6), dtype=np.int64)
        extended[:10] = dense
        for t in range(9, 16):
            cube.num_times = 16
            cell = (int(rng.integers(0, 6)), int(rng.integers(0, 6)))
            cube.update((t,) + cell, 4)
            extended[(t,) + cell] += 4
        for _ in range(20):
            box = random_box(rng, (16, 6, 6))
            assert cube.query(box) == brute_box_sum(extended, box)

    def test_conversion_still_works_after_bulk_load(self):
        rng = np.random.default_rng(161)
        dense = rng.integers(0, 9, size=(8, 16, 16))
        cube = EvolvingDataCube.from_dense(dense)
        box = Box((1, 2, 2), (6, 13, 14))
        expected = brute_box_sum(dense, box)
        counter = cube.counter
        counter.reset()
        assert cube.query(box) == expected
        first = counter.cell_reads
        counter.reset()
        assert cube.query(box) == expected
        assert counter.cell_reads < first  # eCube conversion engaged

    def test_bulk_load_much_cheaper_than_streaming(self):
        rng = np.random.default_rng(162)
        dense = rng.integers(0, 3, size=(16, 16, 16))
        bulk = EvolvingDataCube.from_dense(dense)
        bulk_cost = bulk.counter.snapshot().cell_accesses
        streamed = EvolvingDataCube((16, 16), num_times=16)
        for t, x, y in np.argwhere(dense):
            streamed.update((int(t), int(x), int(y)), int(dense[t, x, y]))
        stream_cost = streamed.counter.snapshot().cell_accesses
        assert bulk_cost < stream_cost / 10
