"""The write-ahead log: codec round trips, torn tails, segments, fsync.

The codec properties are Hypothesis-driven: every record type with
arbitrary (including negative) deltas and coordinates must survive
``encode_record`` -> ``decode_payload`` bit-exactly, and a log truncated
at *any* byte offset must replay exactly an intact prefix of what was
written -- never garbage, never an error -- and accept appends again
after the open-for-append repair.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError, StorageError
from repro.durability.wal import (
    _FRAME,
    _HEADER,
    SEGMENT_MAGIC,
    AdvanceRecord,
    CheckpointMarkerRecord,
    DrainRecord,
    IntervalBatchRecord,
    IntervalInsertRecord,
    OutOfOrderBatchRecord,
    OutOfOrderRecord,
    RetireRecord,
    UpdateBatchRecord,
    UpdateRecord,
    WriteAheadLog,
    decode_payload,
    encode_record,
    inspect_log,
)

# keep coordinates comfortably inside i64 so round trips are exact
COORD = st.integers(-(2**62), 2**62)
DELTA = st.integers(-(2**62), 2**62)


def _batch(draw, cls, **kwargs):
    n = draw(st.integers(1, 6))
    ndim = draw(st.integers(1, 4))
    points = np.array(
        [[draw(COORD) for _ in range(ndim)] for _ in range(n)], dtype=np.int64
    )
    deltas = np.array([draw(DELTA) for _ in range(n)], dtype=np.int64)
    return cls(points, deltas, **kwargs)


@st.composite
def update_batch_records(draw):
    return _batch(draw, UpdateBatchRecord, mode=draw(st.sampled_from(["fast", "metered"])))


@st.composite
def oob_batch_records(draw):
    return _batch(draw, OutOfOrderBatchRecord)


@st.composite
def point_records(draw):
    cls = draw(st.sampled_from([UpdateRecord, OutOfOrderRecord]))
    ndim = draw(st.integers(1, 5))
    point = tuple(draw(COORD) for _ in range(ndim))
    return cls(point, draw(DELTA))


@st.composite
def interval_records(draw):
    ndim = draw(st.integers(1, 5))
    cell = tuple(draw(COORD) for _ in range(ndim))
    return IntervalInsertRecord(draw(COORD), draw(COORD), cell, draw(DELTA))


@st.composite
def interval_batch_records(draw):
    n = draw(st.integers(1, 6))
    ndim = draw(st.integers(1, 4))
    intervals = np.array(
        [[draw(COORD), draw(COORD)] for _ in range(n)], dtype=np.int64
    )
    cells = np.array(
        [[draw(COORD) for _ in range(ndim)] for _ in range(n)], dtype=np.int64
    )
    values = np.array([draw(DELTA) for _ in range(n)], dtype=np.int64)
    return IntervalBatchRecord(
        intervals, cells, values, mode=draw(st.sampled_from(["fast", "metered"]))
    )


RECORDS = st.one_of(
    point_records(),
    update_batch_records(),
    oob_batch_records(),
    interval_records(),
    interval_batch_records(),
    st.builds(RetireRecord, time=COORD),
    st.builds(DrainRecord, limit=st.one_of(st.none(), st.integers(0, 2**32))),
    st.builds(CheckpointMarkerRecord, checkpoint_id=st.integers(0, 2**62)),
    st.builds(AdvanceRecord, time=COORD),
)


class TestCodec:
    @given(record=RECORDS, lsn=st.integers(1, 2**62))
    def test_round_trip(self, record, lsn):
        frame = encode_record(record, lsn)
        length, crc = _FRAME.unpack_from(frame, 0)
        payload = frame[_FRAME.size :]
        assert length == len(payload)
        assert crc == zlib.crc32(payload)
        got_lsn, got = decode_payload(payload)
        assert got_lsn == lsn
        assert got == record

    @given(record=RECORDS, lsn=st.integers(1, 2**32), flip=st.integers(0, 10**9))
    def test_any_payload_corruption_is_detected(self, record, lsn, flip):
        frame = bytearray(encode_record(record, lsn))
        position = _FRAME.size + flip % (len(frame) - _FRAME.size)
        frame[position] ^= 0x5A
        length, crc = _FRAME.unpack_from(bytes(frame), 0)
        assert zlib.crc32(bytes(frame[_FRAME.size :])) != crc

    def test_unknown_type_rejected(self):
        payload = struct.pack("<BQ", 200, 1)
        with pytest.raises(StorageError):
            decode_payload(payload)

    def test_unknown_batch_mode_rejected(self):
        record = UpdateBatchRecord(
            np.zeros((1, 2), dtype=np.int64), np.ones(1, dtype=np.int64)
        )
        frame = bytearray(encode_record(record, 1))
        # the mode code is the first body byte after the (type, lsn) prefix
        frame[_FRAME.size + 9] = 99
        with pytest.raises(StorageError):
            decode_payload(bytes(frame[_FRAME.size :]))


def _sample_records(count):
    rng = np.random.default_rng(count)
    out = []
    for i in range(count):
        kind = i % 6
        if kind == 0:
            out.append(UpdateRecord((i, int(rng.integers(0, 8))), int(rng.integers(-5, 9))))
        elif kind == 1:
            n = int(rng.integers(1, 5))
            out.append(
                UpdateBatchRecord(
                    rng.integers(0, 16, size=(n, 3)).astype(np.int64),
                    rng.integers(-4, 9, size=n).astype(np.int64),
                )
            )
        elif kind == 2:
            out.append(RetireRecord(i))
        elif kind == 3:
            out.append(DrainRecord(None if i % 8 == 3 else i))
        elif kind == 4:
            out.append(
                IntervalInsertRecord(
                    i, i + int(rng.integers(0, 9)), (int(rng.integers(0, 8)),), int(rng.integers(1, 5))
                )
            )
        else:
            n = int(rng.integers(1, 4))
            starts = rng.integers(0, 64, size=(n, 1))
            out.append(
                IntervalBatchRecord(
                    np.hstack((starts, starts + rng.integers(0, 16, size=(n, 1)))).astype(np.int64),
                    rng.integers(0, 8, size=(n, 2)).astype(np.int64),
                    rng.integers(1, 6, size=n).astype(np.int64),
                )
            )
    return out


class TestTornTail:
    @given(count=st.integers(1, 12), cut=st.integers(0, 10**9))
    @settings(max_examples=40, deadline=None)
    def test_truncation_yields_exact_prefix(self, tmp_path_factory, count, cut):
        directory = tmp_path_factory.mktemp("wal")
        records = _sample_records(count)
        with WriteAheadLog(directory, fsync="off") as wal:
            for record in records:
                wal.append(record)
        (path,) = [directory / name for name in sorted(p.name for p in directory.iterdir())]
        size = path.stat().st_size
        keep = _HEADER.size + cut % (size - _HEADER.size + 1)
        with open(path, "r+b") as handle:
            handle.truncate(keep)
        # read-only inspection reports the intact prefix without repair
        info = inspect_log(directory)
        survivors = info["records"]
        assert survivors <= count
        assert path.stat().st_size == keep
        # open-for-append repairs the tail, replay yields the prefix
        with WriteAheadLog(directory, fsync="off") as wal:
            replayed = [record for _, record in wal.replay()]
            assert replayed == records[:survivors]
            new_lsn = wal.append(RetireRecord(9999))
            assert new_lsn == survivors + 1
        with WriteAheadLog(directory, fsync="off") as wal:
            tail = [record for _, record in wal.replay()]
        assert tail == records[:survivors] + [RetireRecord(9999)]

    def test_truncated_header_is_an_error(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            wal.append(RetireRecord(1))
        (path,) = [p for p in tmp_path.iterdir()]
        with open(path, "r+b") as handle:
            handle.truncate(_HEADER.size - 2)
        with pytest.raises(StorageError):
            WriteAheadLog(tmp_path, fsync="off")

    def test_bad_magic_is_an_error(self, tmp_path):
        (tmp_path / "wal-00000001.log").write_bytes(
            _HEADER.pack(b"JUNK", 1, 1)
        )
        with pytest.raises(StorageError):
            WriteAheadLog(tmp_path, fsync="off")

    def test_future_wal_version_refused(self, tmp_path):
        (tmp_path / "wal-00000001.log").write_bytes(
            _HEADER.pack(SEGMENT_MAGIC, 999, 1)
        )
        with pytest.raises(StorageError, match="upgrade"):
            WriteAheadLog(tmp_path, fsync="off")

    def test_damage_in_non_final_segment_is_an_error(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off", segment_bytes=64) as wal:
            for record in _sample_records(10):
                wal.append(record)
            names = wal.segments()
        assert len(names) > 1
        first = tmp_path / names[0]
        data = bytearray(first.read_bytes())
        data[-1] ^= 0xFF  # corrupt committed (non-tail) history
        first.write_bytes(bytes(data))
        with pytest.raises(StorageError, match="non-final"):
            WriteAheadLog(tmp_path, fsync="off")


class TestSegments:
    def test_rolling_preserves_order_and_lsns(self, tmp_path):
        records = _sample_records(30)
        with WriteAheadLog(tmp_path, fsync="off", segment_bytes=128) as wal:
            lsns = [wal.append(record) for record in records]
            assert lsns == list(range(1, 31))
            assert len(wal.segments()) > 2
            wal.commit()  # replay reads the files, not the write buffer
            replayed = list(wal.replay())
        assert [lsn for lsn, _ in replayed] == lsns
        assert [record for _, record in replayed] == records

    def test_replay_after_lsn(self, tmp_path):
        records = _sample_records(8)
        with WriteAheadLog(tmp_path, fsync="off", segment_bytes=96) as wal:
            for record in records:
                wal.append(record)
            wal.commit()
            suffix = [record for _, record in wal.replay(after_lsn=5)]
        assert suffix == records[5:]

    def test_drop_covered_segments(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off", segment_bytes=96) as wal:
            for record in _sample_records(20):
                wal.append(record)
            wal.commit()
            segments_before = wal.segments()
            # nothing covered: nothing dropped
            assert wal.drop_covered_segments(0) == []
            dropped = wal.drop_covered_segments(20)
            # the active segment always stays, everything covered goes
            assert wal.segments() == segments_before[len(dropped) :]
            assert len(wal.segments()) >= 1
            survivors = [lsn for lsn, _ in wal.replay()]
            base = survivors[0] if survivors else 21
            assert all(lsn >= base for lsn in survivors)

    def test_inspect_log_counts_types(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            wal.append(UpdateRecord((0, 1), 2))
            wal.append(RetireRecord(1))
            wal.append(RetireRecord(2))
        info = inspect_log(tmp_path)
        assert info["records"] == 3
        assert info["record_counts"] == {"update": 1, "retire": 2}
        assert info["torn_tail"] is False


class TestFsyncPolicy:
    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(DomainError):
            WriteAheadLog(tmp_path, fsync="sometimes")

    @pytest.mark.parametrize("policy", ["always", "batch", "off"])
    def test_policies_accept_appends(self, tmp_path, policy):
        with WriteAheadLog(tmp_path / policy, fsync=policy) as wal:
            for record in _sample_records(5):
                wal.append(record)
        with WriteAheadLog(tmp_path / policy, fsync="off") as wal:
            assert len(list(wal.replay())) == 5

    def test_group_commit_resets_counter(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="batch", group_commit=4)
        try:
            for i in range(3):
                wal.append(RetireRecord(i))
            assert wal.appends_since_sync == 3
            wal.append(RetireRecord(3))  # fourth append triggers the sync
            assert wal.appends_since_sync == 0
            wal.append(RetireRecord(4))
            wal.commit()
            assert wal.appends_since_sync == 0
        finally:
            wal.close()

    def test_append_after_close_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.close()
        with pytest.raises(StorageError):
            wal.append(RetireRecord(0))


class TestSegmentBoundaryTear:
    """A torn final record landing exactly on a segment boundary.

    ``append`` rolls to a fresh segment *before* writing a record that
    would overflow the active one, so a crash at that moment leaves the
    new segment file with a partial (or empty) header.  That file holds
    no durable records: opening for append must truncate it away and
    resume on the predecessor instead of raising ``StorageError``.
    """

    def _rolled_log(self, directory, count=30):
        with WriteAheadLog(directory, fsync="off", segment_bytes=200) as wal:
            for record in _sample_records(count):
                wal.append(record)
            names = wal.segments()
            next_lsn = wal.next_lsn
        assert len(names) > 1
        return names, next_lsn

    @pytest.mark.parametrize("header_bytes", [0, 1, 6, _HEADER.size - 1])
    def test_partial_header_tail_is_truncated(self, tmp_path, header_bytes):
        _, next_lsn = self._rolled_log(tmp_path)
        seq = max(
            int(p.name[4:12]) for p in tmp_path.glob("wal-*.log")
        )
        partial = tmp_path / f"wal-{seq + 1:08d}.log"
        partial.write_bytes(
            _HEADER.pack(SEGMENT_MAGIC, 1, next_lsn)[:header_bytes]
        )
        with WriteAheadLog(tmp_path, fsync="off", segment_bytes=200) as wal:
            assert not partial.exists()
            assert wal.next_lsn == next_lsn
            replayed = list(wal.replay())
            assert len(replayed) == next_lsn - 1
            # and the log accepts appends again
            assert wal.append(RetireRecord(7)) == next_lsn

    def test_partial_header_after_torn_predecessor(self, tmp_path):
        """fsync=off can tear the predecessor too; both repairs compose."""
        _, next_lsn = self._rolled_log(tmp_path)
        paths = sorted(tmp_path.glob("wal-*.log"))
        # tear the (current) final segment's last record mid-frame...
        tail = paths[-1]
        tail.write_bytes(tail.read_bytes()[:-3])
        # ...and add a header-less just-rolled segment after it
        seq = int(tail.name[4:12])
        (tmp_path / f"wal-{seq + 1:08d}.log").write_bytes(b"EC")
        with WriteAheadLog(tmp_path, fsync="off", segment_bytes=200) as wal:
            survivors = list(wal.replay())
            assert survivors  # intact prefix, no error
            assert wal.next_lsn == survivors[-1][0] + 1

    def test_sole_short_segment_stays_an_error(self, tmp_path):
        """Without an intact predecessor a short file could be lost
        committed history; recovery must not guess."""
        (tmp_path / "wal-00000001.log").write_bytes(b"ECWL")
        with pytest.raises(StorageError, match="truncated segment header"):
            WriteAheadLog(tmp_path, fsync="off")

    def test_inspect_log_reports_partial_tail_instead_of_raising(
        self, tmp_path
    ):
        self._rolled_log(tmp_path)
        seq = max(int(p.name[4:12]) for p in tmp_path.glob("wal-*.log"))
        (tmp_path / f"wal-{seq + 1:08d}.log").write_bytes(b"ECWL\x01")
        info = inspect_log(tmp_path)
        assert info["torn_tail"] is True
        tail_entry = info["segments"][-1]
        assert tail_entry["records"] == 0
        assert tail_entry["base_lsn"] is None
        assert tail_entry["torn_tail"] is True

    def test_durable_cube_recovers_over_boundary_tear(self, tmp_path):
        from repro.durability.recovery import WAL_SUBDIR, DurableCube

        directory = tmp_path / "cube"
        with DurableCube(
            (4, 4),
            directory,
            buffered=False,
            fsync="off",
            segment_bytes=256,
            num_times=64,
        ) as cube:
            for t in range(40):
                cube.update((t, t % 4, (t * 3) % 4), 1 + t % 5)
            expected_total = cube.total()
        wal_dir = directory / WAL_SUBDIR
        seq = max(int(p.name[4:12]) for p in wal_dir.glob("wal-*.log"))
        assert seq > 1
        (wal_dir / f"wal-{seq + 1:08d}.log").write_bytes(b"ECWL")
        recovered = DurableCube.recover(directory)
        try:
            assert recovered.total() == expected_total
        finally:
            recovered.close()
