"""Crash injection: kill the log at arbitrary points and recover.

The harness builds a mixed workload (in-order updates, ``update_many``
batches, out-of-order corrections, drains, data aging) against a
:class:`~repro.durability.recovery.DurableCube`, then simulates a crash
by truncating the WAL at randomized byte offsets.  Recovery must produce
exactly the state a *live replica* reaches by applying the surviving
operation prefix through the same front-end: same answers, same
occurring-time directory, same lazy-copy progress.  Every slice-store
backend is exercised, buffered and unbuffered.

Also here: the retire-resurrection regression (a replayed correction
addressed to a since-retired time must be skipped, never resurrect the
retired detail slice) and a Hypothesis stateful machine that interleaves
mutations, checkpoints and full recover cycles against a dense oracle.
"""

from __future__ import annotations

import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.core.errors import AgedOutError
from repro.core.types import Box
from repro.durability import DurableCube
from repro.durability.recovery import WAL_SUBDIR, _build_front
from repro.durability.wal import _HEADER, inspect_log

SHAPE = (24, 8, 8)
BACKENDS = ["dense", "paged", "sparse"]


def _make_ops(rng, buffered, count):
    """A mixed workload whose every operation succeeds when applied live.

    Invariants maintained so the dense oracle stays exact: unbuffered
    in-order times never decrease, corrections target existing times at
    or above the retirement boundary, and every ``retire`` is preceded
    by a ``drain`` on buffered cubes so no buffered update can age out.
    """
    ops = []
    t_latest = -1
    boundary = 0

    def _cell():
        return int(rng.integers(0, 8)), int(rng.integers(0, 8))

    for _ in range(count):
        roll = float(rng.random())
        if roll < 0.45 or t_latest < boundary:
            t = int(rng.integers(max(boundary, t_latest, 0), SHAPE[0]))
            ops.append(("update", (t, *_cell()), int(rng.integers(-4, 9))))
            t_latest = max(t_latest, t)
        elif roll < 0.65:
            n = int(rng.integers(1, 6))
            low = boundary if buffered else t_latest
            times = np.sort(rng.integers(low, SHAPE[0], size=n))
            points = np.column_stack(
                (times, rng.integers(0, 8, size=n), rng.integers(0, 8, size=n))
            ).astype(np.int64)
            deltas = rng.integers(-4, 9, size=n).astype(np.int64)
            mode = "fast" if rng.random() < 0.7 else "metered"
            ops.append(("update_many", points, deltas, mode))
            t_latest = max(t_latest, int(times[-1]))
        elif roll < 0.85:
            if buffered:
                limit = None if rng.random() < 0.5 else int(rng.integers(1, 6))
                ops.append(("drain", limit))
            elif t_latest > boundary:  # corrections must be strictly historic
                t = int(rng.integers(boundary, t_latest))
                ops.append(("oob", (t, *_cell()), int(rng.integers(-4, 9))))
            else:
                t = int(rng.integers(t_latest, SHAPE[0]))
                ops.append(("update", (t, *_cell()), int(rng.integers(-4, 9))))
                t_latest = max(t_latest, t)
        else:
            new_boundary = int(rng.integers(boundary, t_latest + 1))
            if buffered:
                ops.append(("drain", None))
            ops.append(("retire", new_boundary))
            boundary = new_boundary
    return ops


def _apply_op(front, op):
    kind = op[0]
    if kind == "update":
        front.update(op[1], op[2])
    elif kind == "update_many":
        front.update_many(op[1], op[2], mode=op[3])
    elif kind == "oob":
        front.apply_out_of_order(op[1], op[2])
    elif kind == "drain":
        front.drain(op[1])
    elif kind == "retire":
        front.retire_before(op[1])
    else:  # pragma: no cover - workload generator bug
        raise AssertionError(kind)


def _dense_effect(dense, op):
    kind = op[0]
    if kind in ("update", "oob"):
        dense[op[1]] += op[2]
    elif kind == "update_many":
        np.add.at(dense, tuple(op[1].T), op[2])


def _prefix_boxes(rng, boundary=0, count=15):
    """Random boxes anchored at time 0 (legal even after data aging).

    The upper time stays at or above the retirement ``boundary`` so the
    prefix query never lands on a retired instance.
    """
    boxes = []
    for _ in range(count):
        t_up = int(rng.integers(boundary, SHAPE[0]))
        upper = (t_up,) + tuple(int(rng.integers(0, n)) for n in SHAPE[1:])
        boxes.append(Box((0, 0, 0), upper))
    return boxes


def _retire_boundary(ops):
    boundary = 0
    for op in ops:
        if op[0] == "retire":
            boundary = op[1]
    return boundary


def _assert_state_parity(recovered, replica, buffered):
    rec_front = recovered.front
    rec_kernel = recovered.cube
    ref_kernel = replica.cube if buffered else replica
    assert rec_kernel.num_slices == ref_kernel.num_slices
    assert rec_kernel.updates_applied == ref_kernel.updates_applied
    assert rec_kernel.occurring_times() == ref_kernel.occurring_times()
    assert rec_kernel.retired_instances == ref_kernel.retired_instances
    # bit-equivalence extends to lazy-copy progress, not just answers
    assert (
        rec_kernel.incomplete_historic_instances()
        == ref_kernel.incomplete_historic_instances()
    )
    if buffered:
        assert rec_front.buffered_updates == replica.buffered_updates
    assert rec_front.total() == replica.total()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("buffered", [True, False])
def test_crash_at_random_offsets_recovers_surviving_prefix(
    tmp_path, backend, buffered
):
    rng = np.random.default_rng(100 + 2 * BACKENDS.index(backend) + buffered)
    ops = _make_ops(rng, buffered, count=45)
    origin = tmp_path / "origin"
    cube = DurableCube(
        SHAPE[1:],
        origin,
        backend=backend,
        buffered=buffered,
        num_times=SHAPE[0],
        fsync="off",
        segment_bytes=2048,
    )
    config = dict(cube._config)
    for op in ops:
        _apply_op(cube, op)
    cube.close()

    wal_dir = origin / WAL_SUBDIR
    tail = sorted(wal_dir.glob("wal-*.log"))[-1]
    tail_size = tail.stat().st_size
    # crash points: clean close, mid-record cuts, and the bare header
    cuts = [tail_size] + [
        _HEADER.size + int(rng.integers(0, tail_size - _HEADER.size + 1))
        for _ in range(4)
    ]
    for case, cut in enumerate(cuts):
        crash_dir = tmp_path / f"crash-{case}"
        shutil.copytree(origin, crash_dir)
        with open(crash_dir / WAL_SUBDIR / tail.name, "r+b") as handle:
            handle.truncate(cut)
        survivors = inspect_log(crash_dir / WAL_SUBDIR)["records"]
        recovered = DurableCube.recover(crash_dir)
        assert recovered.recovery_info["replayed_records"] == survivors
        assert recovered.recovery_info["skipped_records"] == 0

        replica = _build_front(config, counter=None)
        dense = np.zeros(SHAPE, dtype=np.int64)
        for op in ops[:survivors]:
            _apply_op(replica, op)
            _dense_effect(dense, op)
        _assert_state_parity(recovered, replica, buffered)
        for box in _prefix_boxes(rng, _retire_boundary(ops[:survivors])):
            expected = int(
                dense[: box.upper[0] + 1, : box.upper[1] + 1, : box.upper[2] + 1].sum()
            )
            assert recovered.query(box) == expected
            assert replica.query(box) == expected
        # the survivor keeps logging: one more update, one more recovery
        t_next = SHAPE[0] - 1
        recovered.update((t_next, 0, 0), 7)
        dense[t_next, 0, 0] += 7
        recovered.close()
        reopened = DurableCube.recover(crash_dir)
        assert reopened.total() == int(dense.sum())
        reopened.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_crash_after_checkpoint_replays_only_the_tail(tmp_path, backend):
    rng = np.random.default_rng(77)
    ops = _make_ops(rng, True, count=30)
    cube = DurableCube(
        SHAPE[1:], tmp_path, backend=backend, num_times=SHAPE[0], fsync="off"
    )
    for op in ops[:20]:
        _apply_op(cube, op)
    cube.checkpoint()
    for op in ops[20:]:
        _apply_op(cube, op)
    cube.close()

    recovered = DurableCube.recover(tmp_path)
    assert recovered.recovery_info["checkpoint_id"] == 1
    assert recovered.recovery_info["replayed_records"] == len(ops) - 20
    replica = _build_front(dict(cube._config), counter=None)
    for op in ops:
        _apply_op(replica, op)
    _assert_state_parity(recovered, replica, True)
    recovered.close()


class TestRetireResurrection:
    """Satellite: replay must never resurrect since-retired slices."""

    def test_logged_aged_out_correction_is_skipped_on_replay(self, tmp_path):
        cube = DurableCube(
            SHAPE[1:], tmp_path, buffered=False, num_times=SHAPE[0], fsync="off"
        )
        dense = np.zeros(SHAPE, dtype=np.int64)
        for t in range(10):
            cube.update((t, 1, 1), t + 1)
            dense[t, 1, 1] += t + 1
        retired = cube.retire_before(6)
        assert retired > 0
        # the correction is logged before it raises: the log now holds a
        # record whose application failed in the original timeline
        with pytest.raises(AgedOutError):
            cube.apply_out_of_order((2, 1, 1), 100)
        # a batch stopping at its first aged-out correction: the newer
        # correction (time 8) lands, the older one (time 2) does not
        with pytest.raises(AgedOutError):
            cube.apply_out_of_order_many(
                np.array([[2, 3, 3], [8, 3, 3]], dtype=np.int64),
                np.array([50, 9], dtype=np.int64),
            )
        dense[8, 3, 3] += 9
        retired_instances = cube.cube.retired_instances
        num_slices = cube.cube.num_slices
        cube.close()

        recovered = DurableCube.recover(tmp_path)
        assert recovered.recovery_info["skipped_records"] == 2
        assert recovered.cube.retired_instances == retired_instances
        assert recovered.cube.num_slices == num_slices
        assert recovered.total() == int(dense.sum())
        # the retired region is still retired: detail queries refuse
        with pytest.raises(AgedOutError):
            recovered.query(Box((2, 0, 0), (9, 7, 7)))
        # and the open prefix still answers over all of history
        assert recovered.query(Box((0, 0, 0), (23, 7, 7))) == int(dense.sum())
        recovered.close()

    def test_retire_then_crash_preserves_boundary(self, tmp_path):
        cube = DurableCube(
            SHAPE[1:], tmp_path, buffered=False, num_times=SHAPE[0], fsync="off"
        )
        for t in range(12):
            cube.update((t, 0, 0), 5)
        cube.retire_before(8)
        cube.close()
        recovered = DurableCube.recover(tmp_path)
        with pytest.raises(AgedOutError):
            recovered.query(Box((7, 0, 0), (11, 7, 7)))
        assert recovered.total() == 60
        recovered.close()


class DurableCubeMachine(RuleBasedStateMachine):
    """Interleave mutations, checkpoints and recover cycles vs an oracle."""

    def __init__(self):
        super().__init__()
        self.root = tempfile.mkdtemp(prefix="durable-machine-")
        self.cube = DurableCube(
            SHAPE[1:], self.root, num_times=SHAPE[0], fsync="off"
        )
        self.dense = np.zeros(SHAPE, dtype=np.int64)

    def teardown(self):
        self.cube.close()
        shutil.rmtree(self.root, ignore_errors=True)

    @rule(
        t=st.integers(0, SHAPE[0] - 1),
        x=st.integers(0, 7),
        y=st.integers(0, 7),
        delta=st.integers(-4, 8),
    )
    def update(self, t, x, y, delta):
        self.cube.update((t, x, y), delta)
        self.dense[t, x, y] += delta

    @rule(data=st.data())
    def update_many(self, data):
        n = data.draw(st.integers(1, 6))
        points = np.column_stack(
            [
                data.draw(
                    st.lists(st.integers(0, k - 1), min_size=n, max_size=n)
                )
                for k in SHAPE
            ]
        ).astype(np.int64)
        deltas = np.asarray(
            data.draw(st.lists(st.integers(-4, 8), min_size=n, max_size=n)),
            dtype=np.int64,
        )
        self.cube.update_many(points, deltas)
        np.add.at(self.dense, tuple(points.T), deltas)

    @precondition(lambda self: self.cube.front.buffered_updates > 0)
    @rule(limit=st.one_of(st.none(), st.integers(1, 4)))
    def drain(self, limit):
        self.cube.drain(limit)

    @rule()
    def checkpoint(self):
        self.cube.checkpoint()

    @rule()
    def crash_and_recover(self):
        self.cube.close()
        self.cube = DurableCube.recover(self.root)

    @rule(data=st.data())
    def query_matches_oracle(self, data):
        lower = tuple(data.draw(st.integers(0, k - 1)) for k in SHAPE)
        upper = tuple(
            data.draw(st.integers(low, k - 1))
            for low, k in zip(lower, SHAPE)
        )
        expected = int(
            self.dense[
                lower[0] : upper[0] + 1,
                lower[1] : upper[1] + 1,
                lower[2] : upper[2] + 1,
            ].sum()
        )
        assert self.cube.query(Box(lower, upper)) == expected
        assert self.cube.total() == int(self.dense.sum())


TestDurableCubeMachine = DurableCubeMachine.TestCase
TestDurableCubeMachine.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)
