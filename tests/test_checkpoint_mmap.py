"""Zero-copy (mmap) checkpoint loading: equivalence and write-through safety.

The checkpoint archive is now written uncompressed (``np.savez``) and
recovery serves slice arrays directly off an ``mmap`` of the file
(:mod:`repro.storage.mmap_npz`).  These tests pin the contract:

* recovery through the mmap reader is bit-equivalent to the copy-based
  ``np.load`` path on all three backends, including crash-injected
  WAL tails;
* restored arrays are genuinely read-only views of the file, and the
  file's bytes never change no matter what is done to the recovered
  cube (promote-on-write copies to the heap at the first mutation);
* legacy compressed archives (``np.savez_compressed``) still recover
  through the transparent ``np.load`` fallback.
"""

from __future__ import annotations

import hashlib
import shutil

import numpy as np
import pytest

from repro.durability import DurableCube
from repro.storage.mmap_npz import MmapArchive, open_checkpoint
from repro.storage.serialize import kernel_state_arrays

from tests.conftest import brute_box_sum, random_box

BACKENDS = ["dense", "paged", "sparse"]
SHAPE = (24, 8, 8)


def _fill(target, rng, count=60, low=0, high=SHAPE[0]):
    dense = np.zeros(SHAPE, dtype=np.int64)
    times = np.sort(rng.integers(low, high, size=count))
    for t in times:
        point = (int(t), int(rng.integers(0, 8)), int(rng.integers(0, 8)))
        delta = int(rng.integers(-3, 9))
        target.update(point, delta)
        dense[point] += delta
    return dense


def _make_durable(tmp_path, backend, seed=11):
    """Checkpointed cube with a WAL tail; returns (directory, dense mirror)."""
    rng = np.random.default_rng(seed)
    cube = DurableCube(
        SHAPE[1:], tmp_path, backend=backend, num_times=SHAPE[0], fsync="off",
    )
    dense = _fill(cube, rng, count=50, high=12)
    cube.checkpoint()
    dense += _fill(cube, rng, count=25, low=12)
    cube.close()
    return dense


def _archive_path(directory):
    archives = sorted(directory.glob("checkpoint-*.npz"))
    assert len(archives) == 1
    return archives[0]


def _sha256(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestMmapArchive:
    def test_reads_uncompressed_npz_as_readonly_views(self, tmp_path):
        path = tmp_path / "plain.npz"
        values = np.arange(2 * 3 * 4, dtype=np.int64).reshape(2, 3, 4)
        flags = np.array([[True, False], [False, True]])
        scalar = np.array([7])
        with open(path, "wb") as handle:
            np.savez(handle, values=values, flags=flags, scalar=scalar)
        archive = open_checkpoint(path)
        assert isinstance(archive, MmapArchive)
        assert set(archive.keys()) == {"values", "flags", "scalar"}
        assert "values" in archive and "absent" not in archive
        np.testing.assert_array_equal(archive["values"], values)
        np.testing.assert_array_equal(archive["flags"], flags)
        assert int(archive["scalar"][0]) == 7
        for name in archive:
            assert not archive[name].flags.writeable
        with pytest.raises(ValueError):
            archive["values"][0, 0, 0] = 99
        with pytest.raises(KeyError):
            archive["absent"]

    def test_arrays_survive_close(self, tmp_path):
        path = tmp_path / "plain.npz"
        with open(path, "wb") as handle:
            np.savez(handle, big=np.arange(50_000, dtype=np.int64))
        with open_checkpoint(path) as archive:
            big = archive["big"]
        # the mapping is kept alive through the array's buffer
        assert int(big.sum()) == 50_000 * 49_999 // 2

    def test_compressed_archives_fall_back_to_np_load(self, tmp_path):
        path = tmp_path / "legacy.npz"
        with open(path, "wb") as handle:
            np.savez_compressed(handle, values=np.arange(10))
        archive = open_checkpoint(path)
        assert not isinstance(archive, MmapArchive)
        np.testing.assert_array_equal(archive["values"], np.arange(10))
        archive.close()


class TestMmapRecoveryEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_equivalent_to_copy_based_load(
        self, tmp_path, backend, monkeypatch
    ):
        dense = _make_durable(tmp_path / "origin", backend)
        copy_dir = tmp_path / "copy"
        shutil.copytree(tmp_path / "origin", copy_dir)

        via_mmap = DurableCube.recover(tmp_path / "origin")
        monkeypatch.setattr(
            "repro.durability.recovery.open_checkpoint", np.load
        )
        via_load = DurableCube.recover(copy_dir)

        assert via_mmap.total() == via_load.total() == int(dense.sum())
        rng = np.random.default_rng(3)
        for _ in range(25):
            box = random_box(rng, SHAPE)
            expect = brute_box_sum(dense, box)
            assert via_mmap.query(box) == expect
            assert via_load.query(box) == expect
        state_a = kernel_state_arrays(via_mmap.cube)
        state_b = kernel_state_arrays(via_load.cube)
        assert set(state_a) == set(state_b)
        for name in state_a:
            np.testing.assert_array_equal(state_a[name], state_b[name])
        via_mmap.close()
        via_load.close()

    def test_legacy_compressed_checkpoint_recovers(self, tmp_path):
        dense = _make_durable(tmp_path, "dense")
        archive_path = _archive_path(tmp_path)
        with np.load(archive_path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        with open(archive_path, "wb") as handle:
            np.savez_compressed(handle, **arrays)

        recovered = DurableCube.recover(tmp_path)
        assert recovered.total() == int(dense.sum())
        rng = np.random.default_rng(4)
        for _ in range(10):
            box = random_box(rng, SHAPE)
            assert recovered.query(box) == brute_box_sum(dense, box)
        recovered.close()


class TestNeverWrittenThrough:
    @pytest.mark.parametrize("backend", ["dense", "paged"])
    def test_restored_arrays_are_readonly_views(self, tmp_path, backend):
        rng = np.random.default_rng(5)
        cube = DurableCube(
            SHAPE[1:], tmp_path, backend=backend, num_times=SHAPE[0],
            fsync="off",
        )
        _fill(cube, rng, count=40)
        cube.checkpoint()
        cube.close()

        recovered = DurableCube.recover(tmp_path)
        assert recovered.recovery_info["replayed_records"] == 0
        readonly = 0
        for _, payload in recovered.cube.directory.items():
            if payload.retired:
                continue
            values = (
                payload.values if backend == "dense" else payload.store.cells
            )
            if not values.flags.writeable:
                readonly += 1
                assert not payload.ps_flags.flags.writeable
        assert readonly > 0
        recovered.close()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mutations_never_touch_the_archive_file(self, tmp_path, backend):
        _make_durable(tmp_path, backend)
        archive_path = _archive_path(tmp_path)
        before = _sha256(archive_path)

        recovered = DurableCube.recover(tmp_path)
        rng = np.random.default_rng(6)
        # a battery of everything that mutates slices: out-of-order
        # updates (forced copies, dominating-PS fixups, G_d drains),
        # fast batch queries (threshold conversions) and metered queries
        for _ in range(120):
            point = tuple(int(rng.integers(0, n)) for n in SHAPE)
            recovered.update(point, int(rng.integers(-3, 9)))
        boxes = [random_box(rng, SHAPE) for _ in range(30)]
        recovered.query_many(boxes, mode="fast")
        for box in boxes[:5]:
            recovered.query(box)
        recovered.close()

        assert _sha256(archive_path) == before
