"""Property and corruption tests for the historic tile codec.

The codec's contract is absolute: a tile either decodes to exactly the
slices it was built from, or decoding raises -- no torn tail, flipped
byte, or trailing garbage may ever yield a plausible-but-wrong stack.
Round-tripping is checked property-style over arbitrary int64 stacks;
the refusal paths are exercised byte by byte.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError, StorageError
from repro.retention import TileStore, decode_tile, encode_tile, tile_name
from repro.retention.tiles import zigzag_decode, zigzag_encode


@st.composite
def tile_inputs(draw):
    k = draw(st.integers(1, 5))
    shape = draw(
        st.lists(st.integers(1, 5), min_size=1, max_size=3).map(tuple)
    )
    count = k * int(np.prod(shape))
    values = draw(
        st.lists(
            st.integers(-(2**62), 2**62), min_size=count, max_size=count
        )
    )
    stack = np.asarray(values, dtype=np.int64).reshape((k, *shape))
    start = draw(st.integers(-(2**40), 2**40))
    gaps = draw(st.lists(st.integers(1, 50), min_size=k - 1, max_size=k - 1))
    times = np.asarray(
        [start] + list(start + np.cumsum(gaps, dtype=np.int64)), dtype=np.int64
    )
    return stack, times


class TestRoundTrip:
    @settings(max_examples=60)
    @given(tile_inputs())
    def test_decode_inverts_encode_exactly(self, inputs):
        stack, times = inputs
        out_stack, out_times = decode_tile(encode_tile(stack, times))
        np.testing.assert_array_equal(out_stack, stack)
        np.testing.assert_array_equal(out_times, times)

    @settings(max_examples=30)
    @given(tile_inputs())
    def test_encoding_is_byte_deterministic(self, inputs):
        stack, times = inputs
        assert encode_tile(stack, times) == encode_tile(stack, times)

    @settings(max_examples=60)
    @given(st.lists(st.integers(-(2**63), 2**63 - 1), min_size=1, max_size=64))
    def test_zigzag_round_trip_full_int64(self, values):
        arr = np.asarray(values, dtype=np.int64)
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(arr)), arr)

    def test_wide_value_range_forces_eight_byte_width(self):
        stack = np.array([[0, 2**55], [1, -(2**55)]], dtype=np.int64)
        times = np.array([3, 9], dtype=np.int64)
        out_stack, out_times = decode_tile(encode_tile(stack, times))
        np.testing.assert_array_equal(out_stack, stack)
        np.testing.assert_array_equal(out_times, times)


class TestRefusals:
    def _tile(self):
        rng = np.random.default_rng(5)
        stack = rng.integers(-50, 50, size=(4, 3, 3)).astype(np.int64)
        times = np.array([2, 5, 6, 11], dtype=np.int64)
        return encode_tile(stack, times)

    def test_torn_tail_refused_at_every_length(self):
        data = self._tile()
        # decoding any strict prefix must raise, never mis-decode
        for cut in range(len(data)):
            with pytest.raises(StorageError):
                decode_tile(data[:cut])

    def test_corrupt_payload_checksum_refused(self):
        data = bytearray(self._tile())
        data[-10] ^= 0xFF  # inside the compressed payload
        with pytest.raises(StorageError):
            decode_tile(bytes(data))

    def test_corrupt_header_checksum_refused(self):
        data = bytearray(self._tile())
        data[8] ^= 0xFF  # slice-count field, covered by the header CRC
        with pytest.raises(StorageError):
            decode_tile(bytes(data))

    def test_trailing_garbage_refused(self):
        with pytest.raises(StorageError):
            decode_tile(self._tile() + b"x")

    def test_bad_magic_refused(self):
        data = bytearray(self._tile())
        data[0] = ord(b"X")
        with pytest.raises(StorageError):
            decode_tile(bytes(data))

    def test_empty_and_inverted_inputs_rejected(self):
        with pytest.raises(DomainError):
            encode_tile(np.empty((0, 2), dtype=np.int64), np.empty(0))
        with pytest.raises(DomainError):
            encode_tile(
                np.zeros((2, 2), dtype=np.int64),
                np.array([5, 5], dtype=np.int64),
            )


class TestTileStore:
    def _stack(self, seed=7):
        rng = np.random.default_rng(seed)
        stack = np.cumsum(
            rng.integers(0, 9, size=(3, 4, 2)), axis=0
        ).astype(np.int64)
        return stack, np.array([10, 12, 19], dtype=np.int64)

    def test_write_then_slice_at_every_time(self, tmp_path):
        store = TileStore(tmp_path)
        stack, times = self._stack()
        name = store.write_tile(stack, times)
        assert name == tile_name(10, 19)
        for i, t in enumerate(times):
            np.testing.assert_array_equal(store.slice_at(int(t)), stack[i])
        assert store.slice_at(11) is None  # inside the span, not occurring
        assert store.slice_at(40) is None
        assert store.verify() == 1

    def test_rewrite_is_byte_identical(self, tmp_path):
        store = TileStore(tmp_path)
        stack, times = self._stack()
        name = store.write_tile(stack, times)
        first = (tmp_path / name).read_bytes()
        store.write_tile(stack, times)  # a replayed demotion
        assert (tmp_path / name).read_bytes() == first

    def test_rescan_sees_published_tiles_only(self, tmp_path):
        store = TileStore(tmp_path)
        stack, times = self._stack()
        store.write_tile(stack, times)
        (tmp_path / "tile-99-100.tile.tmp").write_bytes(b"torn")
        fresh = TileStore(tmp_path)
        assert fresh.tile_names() == [tile_name(10, 19)]
        np.testing.assert_array_equal(fresh.spans(), [[10, 19]])

    def test_corrupt_tile_on_disk_refused_not_misread(self, tmp_path):
        store = TileStore(tmp_path)
        stack, times = self._stack()
        name = store.write_tile(stack, times)
        path = tmp_path / name
        data = bytearray(path.read_bytes())
        data[-3] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            TileStore(tmp_path).slice_at(10)

    def test_zstd_codec_gated_on_missing_dependency(self, tmp_path):
        import repro.retention.tiles as tiles

        if tiles._zstd is None:
            with pytest.raises(StorageError):
                TileStore(tmp_path, codec="zstd")
        else:  # pragma: no cover - zstandard present
            stack, times = self._stack()
            store = TileStore(tmp_path, codec="zstd")
            store.write_tile(stack, times)
            np.testing.assert_array_equal(store.slice_at(10), stack[0])
