"""Statistical properties of the synthetic workloads.

The substitution argument in DESIGN.md rests on the generators actually
having the structure they claim: spatially clustered stations, repeated
reporting over time, correlated cloud attributes, Gaussian clusters.
These tests verify those properties against uniform null models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.datasets import gauss3, uniform, weather4, weather6


def pairwise_spread(points: np.ndarray, sample: int, rng) -> float:
    """Mean pairwise distance of a sample of rows."""
    index = rng.integers(0, len(points), size=sample)
    chosen = points[index].astype(float)
    deltas = chosen[:, None, :] - chosen[None, :, :]
    return float(np.sqrt((deltas**2).sum(axis=2)).mean())


class TestWeatherStructure:
    def test_stations_are_spatially_clustered(self):
        data = weather4(scale=0.25, seed=9)
        rng = np.random.default_rng(0)
        latlon = data.coords[:, 1:3]
        observed = pairwise_spread(latlon, 300, rng)
        null = np.column_stack(
            [
                rng.integers(0, data.shape[1], size=len(latlon)),
                rng.integers(0, data.shape[2], size=len(latlon)),
            ]
        )
        expected_uniform = pairwise_spread(null, 300, rng)
        # clustering compresses pairwise distances well below uniform
        assert observed < 0.8 * expected_uniform

    def test_stations_report_repeatedly(self):
        data = weather4(scale=0.25, seed=9)
        locations, counts = np.unique(
            data.coords[:, 1:3], axis=0, return_counts=True
        )
        # a station (distinct lat/lon) reports many times over the history
        assert counts.mean() > 3
        assert counts.max() > 10

    def test_weather6_cloud_attributes_correlated(self):
        data = weather6(scale=0.4, seed=9)
        cover = data.coords[:, 3].astype(float)
        lower = data.coords[:, 4].astype(float)
        correlation = np.corrcoef(cover, lower)[0, 1]
        # per-station persistent cloud state induces positive correlation
        assert correlation > 0.2

    def test_every_slice_has_updates(self):
        for generator in (weather4, weather6):
            data = generator(scale=0.2, seed=10)
            assert len(data.occurring_times()) == data.shape[0]


class TestGauss3Structure:
    def test_clustered_vs_uniform(self):
        """With 60 clusters, mean pairwise distance is insensitive (most
        pairs straddle clusters); the collision rate is the cluster-
        sensitive statistic -- clustered points land on far fewer distinct
        cells than a uniform scatter of the same size."""
        data = gauss3(scale=0.25, seed=9)
        clustered_fraction = data.non_empty() / data.num_updates
        null = uniform(data.shape, density=data.density(), seed=9)
        uniform_fraction = null.non_empty() / null.num_updates
        assert clustered_fraction < uniform_fraction - 0.05

    def test_per_slice_update_variance_is_high(self):
        """The cluster-driven variance the paper blames for gauss3's
        Table 4 maximum."""
        data = gauss3(scale=0.25, seed=9)
        counts = data.updates_per_slice().astype(float)
        uniform_data = uniform(data.shape, density=data.density(), seed=9)
        uniform_counts = uniform_data.updates_per_slice().astype(float)
        cv = counts.std() / counts.mean()
        cv_uniform = uniform_counts.std() / uniform_counts.mean()
        assert cv > 1.5 * cv_uniform


class TestUniformNullModel:
    def test_uniform_really_is_flat(self):
        data = uniform((64, 64), density=0.3, seed=11)
        _, counts = np.unique(data.coords[:, 0], return_counts=True)
        cv = counts.std() / counts.mean()
        assert cv < 0.5
