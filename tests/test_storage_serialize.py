"""Tests for cube persistence (save/load round trips)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import AgedOutError, StorageError
from repro.core.types import Box
from repro.ecube.ecube import EvolvingDataCube
from repro.metrics import CostCounter
from repro.storage.serialize import dumps_cube, load_cube, loads_cube, save_cube

from tests.conftest import brute_box_sum, random_box
from tests.test_ecube_cube import random_append_stream


def build_sample(seed=150, count=200, shape=(20, 8, 8)):
    rng = np.random.default_rng(seed)
    cube = EvolvingDataCube(shape[1:], num_times=shape[0])
    dense = np.zeros(shape, dtype=np.int64)
    for point, delta in random_append_stream(rng, shape, count):
        cube.update(point, delta)
        dense[point] += delta
    return cube, dense, rng, shape


class TestRoundTrip:
    def test_file_round_trip(self, tmp_path):
        cube, dense, rng, shape = build_sample()
        path = tmp_path / "cube.npz"
        save_cube(cube, path)
        restored = load_cube(path)
        for _ in range(25):
            box = random_box(rng, shape)
            assert restored.query(box) == brute_box_sum(dense, box)
        assert restored.occurring_times() == cube.occurring_times()
        assert restored.updates_applied == cube.updates_applied

    def test_bytes_round_trip(self):
        cube, dense, rng, shape = build_sample(seed=151)
        blob = dumps_cube(cube)
        restored = loads_cube(blob)
        for _ in range(15):
            box = random_box(rng, shape)
            assert restored.query(box) == brute_box_sum(dense, box)

    def test_conversion_state_survives(self):
        cube, dense, rng, shape = build_sample(seed=152)
        # convert some regions, then snapshot
        boxes = [random_box(rng, shape) for _ in range(20)]
        for box in boxes:
            cube.query(box)
        restored = loads_cube(dumps_cube(cube))
        counter = CostCounter()
        restored.counter = counter
        # restored flags make repeated queries cheap immediately
        for box in boxes:
            assert restored.query(box) == brute_box_sum(dense, box)

    def test_updates_resume_after_restore(self):
        cube, dense, rng, shape = build_sample(seed=153)
        restored = loads_cube(dumps_cube(cube))
        latest = restored.latest_time
        for t in range(latest, shape[0]):
            cell = (int(rng.integers(0, 8)), int(rng.integers(0, 8)))
            restored.update((t,) + cell, 3)
            dense[(t,) + cell] += 3
        for _ in range(20):
            box = random_box(rng, shape)
            assert restored.query(box) == brute_box_sum(dense, box)

    def test_retirement_survives(self, tmp_path):
        cube, dense, _rng, shape = build_sample(seed=154)
        boundary_time = int(cube.occurring_times()[len(cube.occurring_times()) // 2])
        cube.retire_before(boundary_time)
        path = tmp_path / "aged.npz"
        save_cube(cube, path)
        restored = load_cube(path)
        assert restored.retired_instances == cube.retired_instances
        full = Box((0, 0, 0), (shape[0] - 1, 7, 7))
        assert restored.query(full) == dense.sum()
        with pytest.raises(AgedOutError):
            restored.query(
                Box((max(1, boundary_time - 2), 0, 0), (shape[0] - 1, 7, 7))
            )

    def test_empty_cube_round_trip(self, tmp_path):
        cube = EvolvingDataCube((4, 4))
        path = tmp_path / "empty.npz"
        save_cube(cube, path)
        restored = load_cube(path)
        assert restored.query(Box((0, 0, 0), (5, 3, 3))) == 0

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, format_version=np.array([99]))
        with pytest.raises(StorageError):
            load_cube(path)

    def test_incomplete_copy_state_survives(self):
        # a cube with pending lazy copies must restore them faithfully
        cube = EvolvingDataCube((16, 16), num_times=64, copy_budget=0)
        rng = np.random.default_rng(155)
        dense = np.zeros((64, 16, 16), dtype=np.int64)
        for t in range(40):
            cell = (int(rng.integers(0, 16)), int(rng.integers(0, 16)))
            cube.update((t,) + cell, 2)
            dense[(t,) + cell] += 2
        assert cube.incomplete_historic_instances() > 0
        restored = loads_cube(dumps_cube(cube))
        assert (
            restored.incomplete_historic_instances()
            == cube.incomplete_historic_instances()
        )
        for _ in range(20):
            box = random_box(rng, (64, 16, 16))
            assert restored.query(box) == brute_box_sum(dense, box)
