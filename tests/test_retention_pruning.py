"""Pruning of dead correction state behind the retirement horizon.

Before this subsystem, a correction aimed at fully-retired history was
kept *forever*: the ``G_d`` buffer re-buffered it on every drain and the
extent cube's columnar containment index never forgot a moved-over
interval.  These tests pin the fix: pruning actually shrinks the column
arrays (capacity, not just logical length), never changes an answerable
query, and installs an explicit aged-out discipline where silence would
have meant silently wrong answers.  The tolerant WAL scan satellite
rides along (unknown record types and ``demote`` counts in log-info).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.core.errors import AgedOutError
from repro.core.out_of_order import OutOfOrderBuffer
from repro.core.types import Box
from repro.durability.wal import (
    DemoteRecord,
    RetireRecord,
    UpdateRecord,
    WriteAheadLog,
    inspect_log,
)
from repro.ecube.buffered import BufferedEvolvingDataCube
from repro.ecube.extent import ExtentCube


class TestBufferPruneBelow:
    def _filled(self, n=40, ndim=3, seed=2):
        rng = np.random.default_rng(seed)
        buffer = OutOfOrderBuffer(ndim)
        points = np.column_stack(
            [rng.integers(0, 50, size=n)]
            + [rng.integers(0, 6, size=n) for _ in range(ndim - 1)]
        ).astype(np.int64)
        deltas = rng.integers(-4, 9, size=n).astype(np.int64)
        buffer.add_many(points, deltas)
        return buffer, points, deltas

    def test_prunes_exactly_the_entries_below(self):
        buffer, points, _ = self._filled()
        removed = buffer.prune_below(25)
        assert removed == int((points[:, 0] < 25).sum())
        assert len(buffer) == int((points[:, 0] >= 25).sum())
        assert buffer.prune_below(25) == 0  # idempotent

    def test_column_arrays_actually_shrink(self):
        buffer, _, _ = self._filled(n=200)
        capacity_before = buffer._deltas.shape[0]
        assert buffer.prune_below(60) == 200  # everything is below 60
        assert len(buffer) == 0
        assert buffer._deltas.shape[0] < capacity_before
        assert buffer._points.shape[0] < capacity_before

    def test_tree_and_columns_agree_after_partial_prune(self):
        buffer, points, deltas = self._filled(n=60, seed=7)
        buffer.prune_below(20)
        box = Box((20, 0, 0), (49, 5, 5))
        kept = (points[:, 0] >= 20) & (points[:, 0] <= 49)
        expected = int(deltas[kept].sum())
        assert buffer.range_sum(box, mode="metered") == expected
        assert buffer.range_sum(box, mode="fast") == expected
        # full survey over the kept range: both representations line up
        for lo in (20, 30, 45):
            probe = Box((lo, 0, 0), (60, 5, 5))
            assert buffer.range_sum(probe, mode="metered") == buffer.range_sum(
                probe, mode="fast"
            )

    def test_prune_majority_repacks_tree(self):
        # removed > kept exercises the bulk re-pack branch
        buffer, points, deltas = self._filled(n=50, seed=9)
        removed = buffer.prune_below(45)
        assert removed > len(buffer)
        box = Box((45, 0, 0), (49, 5, 5))
        kept = points[:, 0] >= 45
        assert buffer.range_sum(box, mode="metered") == int(deltas[kept].sum())
        assert buffer.range_sum(box, mode="fast") == int(deltas[kept].sum())


class TestBufferedCubePrune:
    def _cube_with_dead_corrections(self):
        cube = BufferedEvolvingDataCube((4, 4))
        for t in range(0, 40, 2):
            cube.update((t, t % 4, (t + 1) % 4), 3)
        # late corrections spread across history
        for t in (1, 3, 5, 21, 33):
            cube.update((t, 0, 0), 2)
        return cube

    def test_retire_prunes_dead_buffer_entries(self):
        cube = self._cube_with_dead_corrections()
        assert cube.buffered_updates == 5
        cube.retire_before(20)
        boundary = cube.cube.occurring_times()[cube.cube.retired_instances]
        # corrections at or below the kept boundary are unreachable: gone
        assert cube.buffered_updates == 2  # t=21 and t=33 survive
        assert all(
            point[0] > boundary for point, _ in cube.buffer.entries()
        )

    def test_answers_above_boundary_unchanged_by_pruning(self):
        pristine = self._cube_with_dead_corrections()
        pruned = self._cube_with_dead_corrections()
        pruned.retire_before(20)
        boxes = [
            Box((20, 0, 0), (39, 3, 3)),
            Box((21, 0, 0), (33, 3, 3)),
            Box((30, 1, 1), (39, 2, 2)),
        ]
        for mode in ("fast", "metered"):
            assert pruned.query_many(boxes, mode=mode) == pristine.query_many(
                boxes, mode=mode
            )

    def test_drain_no_longer_rebuffers_dead_entries(self):
        cube = self._cube_with_dead_corrections()
        cube.retire_before(20)
        applied, kept = cube.drain(None)
        assert kept == 0  # nothing bounces off the retired region anymore
        assert cube.buffered_updates == 0


class TestExtentPrune:
    def _aged_extent(self):
        cube = ExtentCube((4,))
        intervals, cells, values = [], [], []
        for i in range(30):
            start = i * 2
            intervals.append((start, start + 3))
            cells.append((i % 4,))
            values.append(1 + i % 3)
        cube.insert_many(
            np.asarray(intervals), np.asarray(cells), np.asarray(values)
        )
        cube.advance(70)  # everything moves over into the containment index
        return cube

    def test_containment_columns_shrink(self):
        cube = self._aged_extent()
        assert len(cube._cont_ends) == 30
        cube.retire_before(40)
        removed = cube.prune_retired()
        assert removed > 0
        assert len(cube._cont_ends) < 30
        horizon = cube._cont_retired_below
        assert horizon is not None
        assert min(cube._cont_ends) >= horizon

    def test_pruned_region_ages_out_instead_of_undercounting(self):
        cube = self._aged_extent()
        cube.retire_before(40)
        cube.prune_retired()
        with pytest.raises(AgedOutError):
            cube.containment((0, 70))
        with pytest.raises(AgedOutError):
            cube.containment((cube._cont_retired_below - 1, 70))

    def test_containment_above_horizon_unchanged(self):
        pristine = self._aged_extent()
        pruned = self._aged_extent()
        pruned.retire_before(40)
        pruned.prune_retired()
        horizon = pruned._cont_retired_below
        queries = [(horizon, 70), (horizon + 2, 60), (50, 59)]
        assert pruned.containment_many(queries) == pristine.containment_many(
            queries
        )

    def test_family_buffers_prune_with_the_families(self):
        cube = ExtentCube((4,))
        cube.insert((10, 12), (0,), 1)
        cube.insert((40, 45), (1,), 1)
        cube.insert((2, 4), (2,), 1)  # late segment -> G_d of family C
        assert cube.buffered_updates > 0
        cube.retire_before(30)
        assert cube.buffered_updates == 0

    def test_prune_without_retirement_is_a_noop(self):
        cube = self._aged_extent()
        assert cube.prune_retired() == 0
        assert len(cube._cont_ends) == 30
        assert cube._cont_retired_below is None

    def test_prune_survives_snapshot_round_trip(self):
        cube = self._aged_extent()
        cube.retire_before(40)
        cube.prune_retired()
        arrays = cube.state_arrays()
        fresh = ExtentCube((4,))
        fresh.restore_state(arrays)
        assert fresh._cont_retired_below == cube._cont_retired_below
        assert fresh._cont_ends == cube._cont_ends
        with pytest.raises(AgedOutError):
            fresh.containment((0, 70))


class TestLogInfoRecordTypes:
    def test_demote_records_counted_by_name(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            wal.append(UpdateRecord((0, 1), 2))
            wal.append(DemoteRecord(15))
            wal.append(DemoteRecord(30))
            wal.append(RetireRecord(5))
        info = inspect_log(tmp_path)
        assert info["record_counts"] == {"update": 1, "demote": 2, "retire": 1}
        assert info["torn_tail"] is False

    def test_unknown_record_type_reported_not_fatal(self, tmp_path):
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            wal.append(UpdateRecord((0, 1), 2))
            lsn = wal.next_lsn
            path = tmp_path / wal.segments()[-1]
        # append a validly-framed record of a type this build never wrote
        payload = struct.pack("<BQ", 250, lsn) + b"future-payload"
        frame = struct.pack("<II", len(payload), zlib.crc32(payload)) + payload
        with open(path, "ab") as handle:
            handle.write(frame)
        info = inspect_log(tmp_path)
        assert info["records"] == 2
        assert info["record_counts"] == {"update": 1, "unknown_250": 1}
        assert info["torn_tail"] is False
