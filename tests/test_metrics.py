"""Tests for the cost counters and statistics helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (
    CostCounter,
    Quantiles,
    RollingAverage,
    frequency_table,
    measured,
    most_frequent,
    rolling_average,
    sorted_costs,
)


class TestCostCounter:
    def test_basic_tallies(self):
        counter = CostCounter()
        counter.read_cells(3)
        counter.write_cells()
        counter.read_pages(2)
        counter.write_pages()
        snap = counter.snapshot()
        assert snap.cell_reads == 3
        assert snap.cell_writes == 1
        assert snap.cell_accesses == 4
        assert snap.page_accesses == 3

    def test_copy_context_tags_writes(self):
        counter = CostCounter()
        counter.write_cells(2)
        with counter.copying():
            counter.write_cells(5)
            counter.write_pages(1)
        counter.write_cells()
        snap = counter.snapshot()
        assert snap.copy_cell_writes == 5
        assert snap.copy_page_writes == 1
        assert snap.cost_without_copy == snap.cell_accesses - 5

    def test_copy_context_nests(self):
        counter = CostCounter()
        with counter.copying():
            with counter.copying():
                counter.write_cells()
            counter.write_cells()
        counter.write_cells()
        assert counter.snapshot().copy_cell_writes == 2

    def test_snapshot_delta(self):
        counter = CostCounter()
        counter.read_cells(10)
        before = counter.snapshot()
        counter.read_cells(7)
        delta = counter.snapshot() - before
        assert delta.cell_reads == 7

    def test_measured_context(self):
        counter = CostCounter()
        with measured(counter) as delta:
            counter.read_cells(4)
        assert delta().cell_reads == 4

    def test_reset(self):
        counter = CostCounter()
        counter.read_cells(5)
        counter.reset()
        assert counter.snapshot().cell_accesses == 0


class TestRollingAverage:
    def test_grouped_means(self):
        assert rolling_average([1, 2, 3, 4, 5, 6], group_size=2) == [1.5, 3.5, 5.5]

    def test_partial_trailing_group(self):
        assert rolling_average([2, 4, 6], group_size=2) == [3.0, 6.0]

    def test_streaming_matches_batch(self):
        averager = RollingAverage(3)
        averager.extend(range(10))
        assert averager.finish() == rolling_average(list(range(10)), 3)

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            RollingAverage(0)


class TestSortedCostsAndQuantiles:
    def test_sorted(self):
        assert sorted_costs([3, 1, 2]).tolist() == [1.0, 2.0, 3.0]

    def test_quantiles(self):
        q = Quantiles.of(list(range(1, 101)))
        assert q.minimum == 1
        assert q.maximum == 100
        assert q.p50 == pytest.approx(50.5)
        assert q.mean == pytest.approx(50.5)

    def test_quantiles_empty_rejected(self):
        with pytest.raises(ValueError):
            Quantiles.of([])


class TestMode:
    def test_most_frequent(self):
        assert most_frequent([1, 2, 2, 3]) == 2

    def test_tie_breaks_small(self):
        assert most_frequent([2, 2, 1, 1]) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            most_frequent([])

    def test_frequency_table(self):
        assert frequency_table([1, 1, 2]) == {1: 2, 2: 1}

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_mode_is_a_maximal_value(self, values):
        table = frequency_table(values)
        mode = most_frequent(values)
        assert table[mode] == max(table.values())
