"""Linearizability-style stateful test of snapshot-isolated serving.

Hypothesis interleaves the full concurrent-serving action set --
pinning views, querying pinned and live state, in-order and historic
updates, buffer drains and durable checkpoints -- against one
``DurableCube`` served through a :class:`SnapshotCube`.  The check is
the snapshot-isolation contract itself: every query against a pinned
view must equal the sequential replay of the write prefix that existed
when the view was pinned (held as a dense array copy), no matter what
the writer did afterwards; live queries must see every write.

The machine is single-threaded -- it explores the *logical*
interleavings (which epoch a reader holds vs. where the writer is),
which is where snapshot bugs live; the scheduling-level races are the
stress suite's job (``test_concurrent_snapshot.py``).
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.types import Box
from repro.durability.recovery import DurableCube

SHAPE = (5, 5)
NUM_TIMES = 20
MAX_PINNED = 4


class ConcurrentServingMachine(RuleBasedStateMachine):
    @initialize()
    def build(self):
        self.dir = Path(tempfile.mkdtemp(prefix="repro-stateful-"))
        self.durable = DurableCube(
            SHAPE,
            self.dir / "cube",
            buffered=True,
            backend="dense",
            fsync="off",
            num_times=NUM_TIMES,
        )
        self.snap = self.durable.serve()
        self.dense = np.zeros((NUM_TIMES,) + SHAPE, dtype=np.int64)
        self.latest = 0
        #: pinned views with the dense prefix they must keep answering
        self.views: list[tuple[object, np.ndarray]] = []

    # -- writes (one logical writer) ----------------------------------------

    @rule(
        advance=st.integers(0, 2),
        x=st.integers(0, SHAPE[0] - 1),
        y=st.integers(0, SHAPE[1] - 1),
        delta=st.integers(-5, 9),
    )
    def update(self, advance, x, y, delta):
        t = min(NUM_TIMES - 1, self.latest + advance)
        self.latest = max(self.latest, t)
        self.snap.update((t, x, y), delta)
        self.dense[t, x, y] += delta

    @rule(data=st.data(), count=st.integers(1, 6))
    def update_batch(self, data, count):
        points = []
        for _ in range(count):
            t = data.draw(st.integers(0, min(NUM_TIMES - 1, self.latest + 2)))
            points.append(
                (
                    t,
                    data.draw(st.integers(0, SHAPE[0] - 1)),
                    data.draw(st.integers(0, SHAPE[1] - 1)),
                )
            )
        points = np.asarray(points, dtype=np.int64)
        deltas = np.asarray(
            [data.draw(st.integers(-4, 8)) for _ in range(count)],
            dtype=np.int64,
        )
        self.snap.update_many(points, deltas)
        np.add.at(self.dense, tuple(points.T), deltas)
        self.latest = max(self.latest, int(points[:, 0].max()))

    @precondition(lambda self: self.latest > 0)
    @rule(
        back=st.integers(1, NUM_TIMES),
        x=st.integers(0, SHAPE[0] - 1),
        y=st.integers(0, SHAPE[1] - 1),
        delta=st.integers(-5, 9),
    )
    def correct_historic(self, back, x, y, delta):
        t = max(0, self.latest - back)
        self.snap.update((t, x, y), delta)
        self.dense[t, x, y] += delta

    @rule(limit=st.one_of(st.none(), st.integers(1, 4)))
    def drain(self, limit):
        self.snap.drain(limit)

    @rule()
    def checkpoint(self):
        manifest = self.snap.checkpoint()
        assert manifest.covered_epoch == self.snap.current_sequence()

    # -- readers ------------------------------------------------------------

    @rule()
    def pin(self):
        if len(self.views) >= MAX_PINNED:
            view, _ = self.views.pop(0)
            view.release()
        self.views.append((self.snap.pin(), self.dense.copy()))

    @precondition(lambda self: self.views)
    @rule(data=st.data())
    def query_pinned(self, data):
        index = data.draw(st.integers(0, len(self.views) - 1))
        view, frozen = self.views[index]
        box = self._draw_box(data)
        expected = int(
            frozen[
                box.lower[0] : box.upper[0] + 1,
                box.lower[1] : box.upper[1] + 1,
                box.lower[2] : box.upper[2] + 1,
            ].sum()
        )
        assert view.query(box) == expected
        assert view.query_many([box, box]) == [expected, expected]

    @precondition(lambda self: self.views)
    @rule(data=st.data())
    def release(self, data):
        index = data.draw(st.integers(0, len(self.views) - 1))
        view, _ = self.views.pop(index)
        view.release()

    @rule(data=st.data())
    def query_live(self, data):
        box = self._draw_box(data)
        expected = int(
            self.dense[
                box.lower[0] : box.upper[0] + 1,
                box.lower[1] : box.upper[1] + 1,
                box.lower[2] : box.upper[2] + 1,
            ].sum()
        )
        assert self.snap.query(box) == expected

    def _draw_box(self, data) -> Box:
        lower, upper = [], []
        for n in (NUM_TIMES,) + SHAPE:
            a = data.draw(st.integers(0, n - 1))
            b = data.draw(st.integers(a, n - 1))
            lower.append(a)
            upper.append(b)
        return Box(tuple(lower), tuple(upper))

    # -- invariants ---------------------------------------------------------

    @invariant()
    def live_total_matches(self):
        if not hasattr(self, "snap"):
            return
        assert self.snap.total() == int(self.dense.sum())

    @invariant()
    def pinned_views_unchanged_by_later_writes(self):
        if not hasattr(self, "snap"):
            return
        full = Box((0, 0, 0), (NUM_TIMES - 1, SHAPE[0] - 1, SHAPE[1] - 1))
        for view, frozen in self.views:
            assert view.query(full) == int(frozen.sum())

    def teardown(self):
        if hasattr(self, "snap"):
            for view, _ in self.views:
                view.release()
            self.snap.close()
            self.durable.close()
            shutil.rmtree(self.dir, ignore_errors=True)


TestConcurrentServingMachine = ConcurrentServingMachine.TestCase
TestConcurrentServingMachine.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
