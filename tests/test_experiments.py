"""Smoke and shape tests for the experiment drivers (small scales)."""

from __future__ import annotations

import pytest

from repro.experiments.runner import EXPERIMENTS, PAPER_SET
from repro.workloads.datasets import gauss3, weather4, weather6


@pytest.fixture(scope="module")
def tiny_weather4():
    return weather4(scale=0.12, seed=1)


@pytest.fixture(scope="module")
def tiny_weather6():
    return weather6(scale=0.25, seed=2)


@pytest.fixture(scope="module")
def tiny_gauss3():
    return gauss3(scale=0.12, seed=3)


class TestTable3:
    def test_rows_for_all_datasets(self):
        from repro.experiments.table3 import run

        result = run(scale=0.12)
        assert [row[0] for row in result.rows] == ["weather4", "weather6", "gauss3"]
        for row in result.rows:
            assert row[2] > 0 and row[3] > 0


class TestFig10and11:
    def test_uni_shape(self, tiny_weather4):
        from repro.experiments.fig10_11 import run

        result = run(dataset=tiny_weather4, num_queries=400, validate_sample=20)
        by_name = {row[0]: row for row in result.rows}
        # eCube starts above DDC (two prefix queries vs direct algorithm)
        assert by_name["eCube"][1] > by_name["DDC"][1]
        # eCube decreases; PS stays far below both
        assert by_name["eCube"][2] < by_name["eCube"][1]
        assert by_name["PS"][3] < by_name["DDC"][3]
        assert len(result.series["eCube"]) == 400 // 50

    def test_skew_converges_faster(self, tiny_weather4):
        from repro.experiments.fig10_11 import run

        uni = run(dataset=tiny_weather4, workload="uni", num_queries=400,
                  validate_sample=5)
        skew = run(dataset=tiny_weather4, workload="skew", num_queries=400,
                   validate_sample=5)

        def drop(result):
            row = {r[0]: r for r in result.rows}["eCube"]
            return row[1] - row[2]

        assert drop(skew) > 0

    def test_rejects_nothing_silently(self, tiny_weather4):
        from repro.experiments.fig10_11 import run

        result = run(dataset=tiny_weather4, num_queries=120, validate_sample=120)
        assert result.notes["queries"] == 120


class TestFig12and13:
    def test_copy_cost_area_positive(self, tiny_weather6):
        from repro.experiments.fig12_13 import run

        result = run(dataset=tiny_weather6)
        by_name = {row[0]: row for row in result.rows}
        assert by_name["with copy"][5] > by_name["without copy"][5]
        assert result.notes["total copy cost (area between curves)"] > 0

    def test_curves_sorted(self, tiny_gauss3):
        from repro.experiments.fig12_13 import run

        result = run(dataset=tiny_gauss3)
        for series in result.series.values():
            assert series == sorted(series)


class TestTable4:
    def test_small_constants(self):
        from repro.experiments.table4 import run

        result = run(names=("gauss3",), scale=0.12)
        rows = {(row[0], row[1]): row for row in result.rows}
        in_memory = rows[("gauss3", "in-memory")]
        disk = rows[("gauss3", "disk")]
        assert in_memory[3] <= 6  # max stays a small constant
        assert disk[3] <= 1  # disk never exceeds one


class TestFig14:
    def test_tree_cost_scales_with_points_array_stays_flat(self):
        """The Figure 14 mechanism: the index's cost grows with the number
        of stored points while the pre-aggregated array's stays
        polylogarithmic, so the gap widens with data size (at tiny scales
        the tree can even win -- it has almost no leaves)."""
        from repro.experiments.fig14 import run

        small = run(dataset=weather6(scale=0.25, seed=2), num_queries=250)
        large = run(dataset=weather6(scale=0.5, seed=2), num_queries=250)

        def mean(result, name):
            return {row[0]: row for row in result.rows}[name][1]

        ratio_small = mean(small, "R*-tree") / mean(small, "DDC array")
        ratio_large = mean(large, "R*-tree") / mean(large, "DDC array")
        assert ratio_large > ratio_small
        # array cost barely moves across a ~20x cell-count increase
        assert mean(large, "DDC array") <= 3 * mean(small, "DDC array")


class TestAblations:
    def test_copy_budget(self):
        from repro.experiments.ablation_copy_budget import run

        result = run(dataset=gauss3(scale=0.1), multipliers=(0.0, 2.0))
        assert result.rows[0][2] >= result.rows[1][2]  # more budget, fewer laggards

    def test_dims(self):
        from repro.experiments.ablation_dims import run

        result = run(dims=(2, 3), num_queries=300)
        assert len(result.rows) == 2

    def test_directory(self):
        from repro.experiments.ablation_directory import run

        result = run(sizes=(100, 1000), lookups=200)
        assert result.rows[0][1] < result.rows[1][1]  # cost grows with n

    def test_out_of_order(self):
        from repro.experiments.ablation_out_of_order import run

        result = run(fractions=(0.0, 0.3), shape=(64, 64), num_queries=60)
        clean = result.rows[0]
        dirty = result.rows[1]
        assert dirty[2] > clean[2]  # buffered updates make queries dearer
        assert dirty[3] == pytest.approx(clean[3], rel=0.05)  # drain restores

    def test_adaptivity(self):
        from repro.experiments.ablation_adaptivity import run

        result = run(
            dataset=weather4(scale=0.14, seed=4),
            training_queries=600,
            probe_queries=80,
        )
        rows = {row[0]: row for row in result.rows}
        hot = rows["hot (trained)"]
        cold = rows["cold (untouched)"]
        assert hot[1] < cold[1]  # trained region cheaper for eCube
        assert hot[1] < hot[2]  # and cheaper than DDC there

    def test_molap_rolap(self):
        from repro.experiments.ablation_molap_rolap import run

        result = run(
            shape=(32, 12, 12), densities=(0.01, 0.1), num_queries=80
        )
        low, high = result.rows
        # eCube flat, ROLAP grows with density
        assert high[3] > 3 * low[3]
        assert high[2] < 3 * low[2] + 10

    def test_sparse(self):
        from repro.experiments.ablation_sparse import run

        result = run(shape=(32, 256), density=0.01, num_queries=40)
        assert len(result.rows) == 6


class TestRunner:
    def test_registry_covers_paper_set(self):
        for name in PAPER_SET:
            assert name in EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        from repro.experiments.runner import run_experiments

        with pytest.raises(KeyError):
            run_experiments(["fig99"])

    def test_format_table(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult("demo", ["a", "b"], [(1, 2.5)], notes={"k": "v"})
        text = result.format_table()
        assert "demo" in text and "2.50" in text and "# k: v" in text

    def test_format_empty(self):
        from repro.experiments.common import ExperimentResult

        assert "no tabular rows" in ExperimentResult("x").format_table()

    def test_write_csv(self, tmp_path):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(
            "Figure 99: demo",
            headers=["a", "b"],
            rows=[(1, 2.5), (3, 4.0)],
            series={"eCube": [1.0, 2.0, 3.0]},
        )
        written = result.write_csv(tmp_path)
        assert len(written) == 2
        rows_file = tmp_path / "figure_99_demo.csv"
        assert rows_file.exists()
        content = rows_file.read_text().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,2.5"
        series_file = tmp_path / "figure_99_demo.ecube.csv"
        assert series_file.read_text().splitlines()[1] == "0,1.0"

    def test_format_series_ascii_chart(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(
            "Figure 98",
            series={"eCube": [10.0] * 10 + [1.0] * 10},
        )
        chart = result.format_series(width=20, height=4)
        assert "eCube" in chart
        lines = [l for l in chart.splitlines() if l.startswith("|")]
        assert len(lines) == 4
        # tall at the start, short at the end
        assert lines[0].count("#") < lines[-1].count("#")
        assert "no series" in ExperimentResult("x").format_series()

    def test_runner_series_flag(self, capsys):
        from repro.experiments.runner import run_experiments

        run_experiments(
            ["ablation-directory"], show_series=True, sizes=(100,), lookups=50
        )
        out = capsys.readouterr().out
        assert "directory lookup cost" in out  # tabular still printed
        # ablation-directory records no series; exercise the chart path
        from repro.experiments.fig12_13 import run
        from repro.workloads.datasets import gauss3

        result = run(dataset=gauss3(scale=0.1, seed=3))
        chart = result.format_series()
        assert "with copy" in chart
        assert any(line.startswith("|") for line in chart.splitlines())

    def test_cli_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "ablation-sparse" in out

    def test_cli_runs_one_experiment_with_csv(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["ablation-directory", "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "directory lookup cost" in out
        assert list(tmp_path.glob("*.csv"))
