"""The TCP front: wire protocol, error mapping, graceful drain.

The server is hosted on a background thread running its own asyncio
loop; the cube under it is an inline :class:`ShardedCube` (no worker
processes), so the test exercises exactly the network layer.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading

import numpy as np
import pytest

from repro.core.types import Box
from repro.sharding import ShardClient, ShardServer, ShardedCube


class _ServerThread:
    """Run a ShardServer on its own event loop until stopped."""

    def __init__(self, cube) -> None:
        self.server = ShardServer(cube)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)

        async def main() -> None:
            await self.server.start()
            self._started.set()
            await self.server.serve_forever(install_sigterm=False)

        self._loop.run_until_complete(main())

    def __enter__(self) -> ShardServer:
        self._thread.start()
        assert self._started.wait(timeout=30)
        return self.server

    def __exit__(self, *exc) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.shutdown(), self._loop
        ).result(timeout=30)
        self._thread.join(timeout=30)


@pytest.fixture
def cube():
    cube = ShardedCube((6, 6), shards=2, processes=False)
    yield cube
    cube.close()


def test_roundtrip_over_tcp(cube, rng):
    with _ServerThread(cube) as server:
        with ShardClient("127.0.0.1", server.port) as client:
            assert client.ping()
            times = np.sort(rng.integers(0, 10, size=40))
            points = np.column_stack(
                [times, rng.integers(0, 6, 40), rng.integers(0, 6, 40)]
            ).astype(np.int64)
            deltas = np.ones(40, dtype=np.int64)
            client.update_many(points.tolist(), deltas.tolist())
            assert client.total() == 40
            box = ((0, 0, 0), (9, 5, 5))
            assert client.query(*box) == cube.query(Box(*box))
            client.update([int(times[-1]) + 1, 0, 0], 5)
            assert client.total() == 45
            assert client.query_many([((0, 0, 0), (11, 5, 5))]) == [45]


def test_errors_cross_the_wire_as_error_frames(cube):
    with _ServerThread(cube) as server:
        with ShardClient("127.0.0.1", server.port) as client:
            # a domain error: wrong arity point
            reply = client.request(
                {"op": "update", "point": [0, 1], "delta": 1}
            )
            assert reply["ok"] is False
            assert reply["error"] == "DomainError"
            # unknown op
            reply = client.request({"op": "frobnicate"})
            assert reply["ok"] is False
            assert reply["error"] == "ProtocolError"
            # invalid JSON is answered, not dropped
            raw = b"not json"
            client._sock.sendall(struct.pack(">I", len(raw)) + raw)
            header = client._recv_exact(4)
            (length,) = struct.unpack(">I", header)
            reply = json.loads(client._recv_exact(length))
            assert reply["error"] == "ProtocolError"


def test_oversized_frames_are_refused(cube):
    with _ServerThread(cube) as server:
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=30)
        try:
            sock.sendall(struct.pack(">I", 1 << 30))
            header = sock.recv(4)
            (length,) = struct.unpack(">I", header)
            body = b""
            while len(body) < length:
                body += sock.recv(length - len(body))
            assert json.loads(body)["error"] == "ProtocolError"
        finally:
            sock.close()


def test_shutdown_drains_inflight_requests(cube, rng):
    with _ServerThread(cube) as server:
        client = ShardClient("127.0.0.1", server.port)
        times = np.sort(rng.integers(0, 10, size=30))
        points = np.column_stack(
            [times, rng.integers(0, 6, 30), rng.integers(0, 6, 30)]
        ).astype(np.int64)
        client.update_many(points.tolist(), [1] * 30)
        assert client.total() == 30
        client.close()
    # after drain the listener is gone
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", server.port), timeout=2)
