"""Tests for the external-memory eCube variant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AppendOrderError, DomainError
from repro.core.types import Box
from repro.ecube.disk import DiskEvolvingDataCube
from repro.metrics import CostCounter

from tests.conftest import brute_box_sum, random_box
from tests.test_ecube_cube import build_reference, random_append_stream


class TestBasics:
    def test_invalid_shape(self):
        with pytest.raises(DomainError):
            DiskEvolvingDataCube((0,))

    def test_append_discipline(self):
        cube = DiskEvolvingDataCube((4,))
        cube.update((3, 0), 1)
        with pytest.raises(AppendOrderError):
            cube.update((2, 0), 1)

    def test_empty_query(self):
        cube = DiskEvolvingDataCube((4,))
        assert cube.query(Box((0, 0), (5, 3))) == 0
        assert cube.total() == 0


class TestCorrectnessAgainstMemoryVariant:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_matches_dense_reference(self, data):
        ndim = data.draw(st.integers(2, 3))
        shape = tuple(data.draw(st.integers(2, 8)) for _ in range(ndim))
        count = data.draw(st.integers(1, 50))
        page_cells = data.draw(st.sampled_from([4, 16, 2048]))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        updates = random_append_stream(rng, shape, count)
        dense = build_reference(shape, updates)
        cube = DiskEvolvingDataCube(
            shape[1:], num_times=shape[0], page_size=page_cells * 4, cell_size=4
        )
        for point, delta in updates:
            cube.update(point, delta)
        for _ in range(8):
            box = random_box(rng, shape)
            assert cube.query(box) == brute_box_sum(dense, box)

    def test_interleaved_queries(self):
        rng = np.random.default_rng(50)
        shape = (16, 8, 8)
        updates = random_append_stream(rng, shape, 200)
        cube = DiskEvolvingDataCube(
            shape[1:], num_times=shape[0], page_size=64, cell_size=4
        )
        dense = np.zeros(shape, dtype=np.int64)
        for index, (point, delta) in enumerate(updates):
            cube.update(point, delta)
            dense[point] += delta
            if index % 9 == 0:
                box = random_box(rng, shape)
                assert cube.query(box) == brute_box_sum(dense, box)


class TestPagedCopying:
    def test_at_most_one_copy_page_write_per_update(self):
        counter = CostCounter()
        cube = DiskEvolvingDataCube(
            (16, 16), num_times=64, counter=counter, page_size=256, cell_size=4
        )
        rng = np.random.default_rng(51)
        last_copy_pages = 0
        for t in range(64):
            for _ in range(8):
                cube.update(
                    (t, int(rng.integers(0, 16)), int(rng.integers(0, 16))), 1
                )
                snap = counter.snapshot()
                # copy-ahead contributes at most one page write per update;
                # forced copies can add more but only for touched cells
                assert snap.copy_page_writes - last_copy_pages <= 1 + 16
                last_copy_pages = snap.copy_page_writes

    def test_incomplete_never_exceeds_one_with_big_pages(self):
        # a single page write copies the whole slice here (paper: 2048
        # cells per page)
        cube = DiskEvolvingDataCube((8, 8), num_times=64, page_size=8192)
        rng = np.random.default_rng(52)
        worst = 0
        for t in range(64):
            for _ in range(4):
                cube.update((t, int(rng.integers(0, 8)), int(rng.integers(0, 8))), 1)
                worst = max(worst, cube.incomplete_historic_instances())
        assert worst <= 1

    def test_page_accesses_reported_per_operation(self):
        cube = DiskEvolvingDataCube((8, 8), page_size=64, cell_size=4)
        cube.update((0, 1, 1), 5)
        assert cube.last_op_page_accesses >= 0
        # the second update to the same cell forces copies of the old value
        # into slice 0 (page writes)
        cube.update((1, 1, 1), 2)
        assert cube.last_op_page_accesses >= 1
        # a query at time 0 now reads the copied cells from slice pages
        cube.query(Box((0, 0, 0), (0, 1, 1)))
        assert cube.last_op_page_accesses >= 1

    def test_query_page_cost_below_cell_cost(self):
        rng = np.random.default_rng(53)
        shape = (8, 32)
        cube = DiskEvolvingDataCube((32,), num_times=8, page_size=64, cell_size=4)
        counter = cube.counter
        for point, delta in random_append_stream(rng, shape, 100):
            cube.update(point, delta)
        before = counter.snapshot()
        cube.query(Box((0, 0), (7, 31)))
        delta = counter.snapshot() - before
        # sequential cells share pages: page accesses <= cell reads
        assert cube.last_op_page_accesses <= delta.cell_reads
