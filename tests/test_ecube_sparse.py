"""Tests for the sparse Evolving Data Cube (Section 7 future work)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AppendOrderError, DomainError
from repro.core.types import Box
from repro.ecube.ecube import EvolvingDataCube
from repro.ecube.sparse import SparseEvolvingDataCube
from repro.metrics import CostCounter

from tests.conftest import brute_box_sum, random_box
from tests.test_ecube_cube import build_reference, random_append_stream


class TestBasics:
    def test_validation(self):
        with pytest.raises(DomainError):
            SparseEvolvingDataCube((0,))
        cube = SparseEvolvingDataCube((4,), num_times=8)
        with pytest.raises(DomainError):
            cube.update((8, 0), 1)
        with pytest.raises(DomainError):
            cube.update((0, 4), 1)
        cube.update((3, 1), 1)
        with pytest.raises(AppendOrderError):
            cube.update((2, 1), 1)

    def test_empty(self):
        cube = SparseEvolvingDataCube((4, 4))
        assert cube.query(Box((0, 0, 0), (9, 3, 3))) == 0
        assert cube.total() == 0
        assert cube.materialized_cells == 0


class TestEquivalenceWithDenseCube:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_same_answers_as_dense(self, data):
        ndim = data.draw(st.integers(2, 4))
        shape = tuple(data.draw(st.integers(2, 8)) for _ in range(ndim))
        count = data.draw(st.integers(1, 60))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        updates = random_append_stream(rng, shape, count)
        dense_ref = build_reference(shape, updates)
        sparse = SparseEvolvingDataCube(shape[1:], num_times=shape[0])
        for point, delta in updates:
            sparse.update(point, delta)
        for _ in range(10):
            box = random_box(rng, shape)
            assert sparse.query(box) == brute_box_sum(dense_ref, box)

    def test_same_counted_costs_as_dense(self):
        """The representations differ; the cost model must not."""
        rng = np.random.default_rng(180)
        shape = (16, 8, 8)
        updates = random_append_stream(rng, shape, 150)
        queries = [random_box(rng, shape) for _ in range(40)]

        def run(cube, counter):
            for point, delta in updates:
                cube.update(point, delta)
            counter.reset()
            for box in queries:
                cube.query(box)
            return counter.cell_reads

        dense_counter = CostCounter()
        dense_cube = EvolvingDataCube(
            shape[1:], num_times=shape[0], counter=dense_counter,
            copy_budget=0,
        )
        sparse_counter = CostCounter()
        sparse_cube = SparseEvolvingDataCube(
            shape[1:], num_times=shape[0], counter=sparse_counter,
            copy_budget=0,
        )
        assert run(dense_cube, dense_counter) == run(
            sparse_cube, sparse_counter
        )

    def test_interleaved_updates_and_queries(self):
        rng = np.random.default_rng(181)
        shape = (20, 6, 6)
        sparse = SparseEvolvingDataCube(shape[1:], num_times=shape[0])
        dense_ref = np.zeros(shape, dtype=np.int64)
        for index, (point, delta) in enumerate(
            random_append_stream(rng, shape, 200)
        ):
            sparse.update(point, delta)
            dense_ref[point] += delta
            if index % 6 == 0:
                box = random_box(rng, shape)
                assert sparse.query(box) == brute_box_sum(dense_ref, box)


class TestSparsity:
    def test_storage_proportional_to_update_chains_not_domain(self):
        # a huge domain with a handful of updates stays tiny
        cube = SparseEvolvingDataCube((1024, 1024), num_times=1000)
        for t in range(20):
            cube.update((t, t, t), 1)
        worst_chain = cube.engine.worst_case_update_cells()
        assert cube.materialized_cells <= 21 * worst_chain * 2
        assert cube.materialized_cells < 1024 * 1024  # never densifies alone

    def test_queries_densify_touched_regions_only(self):
        rng = np.random.default_rng(182)
        cube = SparseEvolvingDataCube((64, 64), num_times=8)
        for t in range(8):
            for _ in range(4):
                cube.update(
                    (t, int(rng.integers(0, 64)), int(rng.integers(0, 64))), 1
                )
        before = cube.materialized_cells
        # repeated historic queries convert (materialize PS cells)
        box = Box((0, 0, 0), (5, 40, 40))
        expected = cube.query(box)
        after_first = cube.materialized_cells
        assert cube.query(box) == expected
        after_second = cube.materialized_cells
        assert after_first >= before  # conversion may add cells
        assert after_second == after_first  # but only once per region

    def test_incomplete_instances_bounded(self):
        rng = np.random.default_rng(183)
        cube = SparseEvolvingDataCube((16, 16), num_times=64)
        worst = 0
        for t in range(64):
            for _ in range(6):
                cube.update(
                    (t, int(rng.integers(0, 16)), int(rng.integers(0, 16))), 1
                )
                worst = max(worst, cube.incomplete_historic_instances())
        assert worst <= 3
