"""Tests for out-of-order corrections into the eCube (Section 2.5 MOLAP)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AgedOutError, AppendOrderError
from repro.core.types import Box
from repro.ecube.buffered import BufferedEvolvingDataCube
from repro.ecube.ecube import EvolvingDataCube

from tests.conftest import brute_box_sum, random_box
from tests.test_ecube_cube import random_append_stream


class TestApplyOutOfOrder:
    def test_rejects_non_historic_times(self):
        cube = EvolvingDataCube((4,))
        cube.update((5, 0), 1)
        with pytest.raises(AppendOrderError):
            cube.apply_out_of_order((5, 0), 1)  # == latest: not historic
        with pytest.raises(AppendOrderError):
            cube.apply_out_of_order((9, 0), 1)

    def test_splices_non_occurring_times(self):
        cube = EvolvingDataCube((4,))
        cube.update((2, 0), 1)
        cube.update((8, 0), 1)
        cube.apply_out_of_order((5, 3), 7)
        assert cube.occurring_times() == (2, 5, 8)
        assert cube.query(Box((0, 0), (4, 3))) == 1  # before: unaffected
        assert cube.query(Box((5, 0), (5, 3))) == 7
        assert cube.query(Box((0, 0), (8, 3))) == 9
        # non-occurring times between splice and floor resolve cumulatively
        assert cube.query(Box((0, 0), (6, 3))) == 8

    def test_splice_before_first_occurring_time(self):
        cube = EvolvingDataCube((4,))
        cube.update((6, 1), 10)
        cube.update((9, 1), 10)
        cube.apply_out_of_order((2, 2), 3)
        assert cube.occurring_times() == (2, 6, 9)
        assert cube.query(Box((0, 0), (2, 3))) == 3
        assert cube.query(Box((3, 0), (5, 3))) == 0
        assert cube.query(Box((0, 0), (9, 3))) == 23

    def test_splice_rejects_retired_region(self):
        cube = EvolvingDataCube((4,))
        for t in range(0, 20, 2):
            cube.update((t, t % 4), 1)
        cube.retire_before(10)
        with pytest.raises(AgedOutError):
            cube.apply_out_of_order((7, 0), 1)  # non-occurring, retired
        cube.apply_out_of_order((13, 0), 5)  # non-occurring, live region
        assert 13 in cube.occurring_times()

    def test_apply_out_of_order_many_newest_first(self):
        cube = EvolvingDataCube((8,))
        for t in range(0, 12, 2):
            cube.update((t, t % 8), 10)
        dense = np.zeros((12, 8), dtype=np.int64)
        for t in range(0, 12, 2):
            dense[t, t % 8] += 10
        corrections = [((3, 1), 4), ((7, 2), -2), ((3, 5), 6), ((8, 0), 1)]
        applied = cube.apply_out_of_order_many(
            [(t,) + (c,) for (t, c), _ in corrections],
            [d for _, d in corrections],
        )
        assert applied == 4
        for (t, c), d in corrections:
            dense[t, c] += d
        rng = np.random.default_rng(42)
        for _ in range(40):
            box = random_box(rng, (12, 8))
            assert cube.query(box) == brute_box_sum(dense, box)

    def test_rejects_retired_region(self):
        cube = EvolvingDataCube((4,))
        for t in range(10):
            cube.update((t, t % 4), 1)
        cube.retire_before(6)
        with pytest.raises(AgedOutError):
            cube.apply_out_of_order((2, 0), 1)

    def test_correction_reaches_all_later_instances(self):
        cube = EvolvingDataCube((8,))
        for t in range(6):
            cube.update((t, t % 8), 10)
        cube.apply_out_of_order((2, 3), 7)
        assert cube.query(Box((0, 0), (1, 7))) == 20  # before: unaffected
        assert cube.query(Box((0, 0), (2, 7))) == 37
        assert cube.query(Box((0, 0), (5, 7))) == 67
        assert cube.query(Box((2, 3), (2, 3))) == 7

    def test_correction_after_conversions(self):
        """PS-converted cells must absorb the correction too."""
        rng = np.random.default_rng(110)
        shape = (12, 8, 8)
        cube = EvolvingDataCube(shape[1:], num_times=shape[0])
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in random_append_stream(rng, shape, 150):
            cube.update(point, delta)
            dense[point] += delta
        # convert broadly by querying a lot
        boxes = [random_box(rng, shape) for _ in range(40)]
        for box in boxes:
            assert cube.query(box) == brute_box_sum(dense, box)
        # now apply corrections at occurring historic times
        occurring = cube.occurring_times()
        for time in occurring[: len(occurring) - 1 : 2]:
            cell = (int(rng.integers(0, 8)), int(rng.integers(0, 8)))
            cube.apply_out_of_order((int(time),) + cell, 5)
            dense[(int(time),) + cell] += 5
        for box in boxes:
            assert cube.query(box) == brute_box_sum(dense, box), box

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_interleaved_corrections_and_queries(self, data):
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        shape = (10, 6, 6)
        cube = EvolvingDataCube(shape[1:], num_times=shape[0])
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in random_append_stream(rng, shape, 60):
            cube.update(point, delta)
            dense[point] += delta
        occurring = list(cube.occurring_times())
        for _ in range(data.draw(st.integers(1, 10))):
            if data.draw(st.booleans()) and len(occurring) > 1:
                time = occurring[
                    data.draw(st.integers(0, len(occurring) - 2))
                ]
                cell = tuple(
                    data.draw(st.integers(0, 5)) for _ in range(2)
                )
                delta = data.draw(st.integers(-4, 6))
                cube.apply_out_of_order((time,) + cell, delta)
                dense[(time,) + cell] += delta
            box = random_box(rng, shape)
            assert cube.query(box) == brute_box_sum(dense, box)


class TestBufferedCube:
    def test_routes_late_arrivals_to_buffer(self):
        cube = BufferedEvolvingDataCube((4, 4))
        cube.update((0, 1, 1), 5)
        cube.update((9, 2, 2), 3)
        cube.update((4, 1, 1), 7)  # late
        assert cube.buffered_updates == 1
        assert cube.query(Box((0, 0, 0), (9, 3, 3))) == 15
        assert cube.query(Box((3, 0, 0), (5, 3, 3))) == 7

    def test_drain_applies_occurring_and_splices_rest(self):
        cube = BufferedEvolvingDataCube((4,))
        for t in (0, 3, 6, 9):
            cube.update((t, 1), 10)
        cube.update((3, 2), 5)  # occurring historic time
        cube.update((4, 2), 7)  # non-occurring historic time
        total_before = cube.total()
        applied, kept = cube.drain()
        assert (applied, kept) == (2, 0)
        assert cube.buffered_updates == 0
        assert cube.total() == total_before
        assert cube.query(Box((3, 0), (3, 3))) == 15
        assert cube.query(Box((4, 0), (5, 3))) == 7  # spliced into the cube
        assert 4 in cube.cube.occurring_times()

    def test_bounded_drain_makes_progress_to_empty(self):
        """Regression: bounded drains used to re-buffer unsplicable
        entries and never converge; now every drained entry lands."""
        cube = BufferedEvolvingDataCube((4,))
        for t in (0, 10, 20):
            cube.update((t, 0), 1)
        for t in (1, 3, 5, 7, 9, 11, 13):  # all never-occurring
            cube.update((t, 1), 2)
        dense = np.zeros((21, 4), dtype=np.int64)
        for t in (0, 10, 20):
            dense[t, 0] += 1
        for t in (1, 3, 5, 7, 9, 11, 13):
            dense[t, 1] += 2
        rng = np.random.default_rng(17)
        boxes = [random_box(rng, (21, 4)) for _ in range(15)]
        rounds = 0
        while cube.buffered_updates:
            before = cube.buffered_updates
            applied, kept = cube.drain(limit=2)
            assert applied > 0  # strict progress per bounded call
            assert cube.buffered_updates < before
            for box in boxes:  # exact mid-drain
                assert cube.query(box) == brute_box_sum(dense, box)
            rounds += 1
            assert rounds <= 10
        assert cube.drain() == (0, 0)

    def test_drain_keeps_only_retired_region_corrections(self):
        cube = BufferedEvolvingDataCube((4,))
        for t in range(0, 30, 3):
            cube.update((t, 0), 1)
        cube.cube.retire_before(15)
        cube.update((4, 1), 5)  # splice target below the boundary: kept
        cube.update((16, 1), 5)  # splice target above the boundary
        applied, kept = cube.drain()
        assert (applied, kept) == (1, 1)
        assert cube.buffered_updates == 1
        assert 16 in cube.cube.occurring_times()
        # the kept correction stays exact through post-processing of the
        # still-answerable open prefix from the beginning of time
        assert cube.query(Box((0, 0), (29, 3))) == 20
        # draining again converges: nothing applies, nothing is lost
        assert cube.drain() == (0, 1)
        assert cube.buffered_updates == 1

    def test_matches_reference_with_heavy_out_of_order(self):
        from repro.workloads.streams import interleave_out_of_order

        rng = np.random.default_rng(112)
        shape = (20, 6, 6)
        cube = BufferedEvolvingDataCube(shape[1:], num_times=shape[0])
        dense = np.zeros(shape, dtype=np.int64)
        updates = random_append_stream(rng, shape, 200)
        for point, delta in interleave_out_of_order(updates, 0.3, seed=9):
            cube.update(point, delta)
            dense[point] += delta
        boxes = [random_box(rng, shape) for _ in range(20)]
        for box in boxes:
            assert cube.query(box) == brute_box_sum(dense, box)
        cube.drain()
        assert cube.buffered_updates == 0  # non-occurring times spliced
        for box in boxes:
            assert cube.query(box) == brute_box_sum(dense, box)
        assert cube.drain() == (0, 0)

    def test_arity_checked(self):
        cube = BufferedEvolvingDataCube((4,))
        with pytest.raises(Exception):
            cube.update((0, 1, 2), 1)

    def test_empty_total(self):
        assert BufferedEvolvingDataCube((4,)).total() == 0


class TestBufferedBatchExecution:
    """The BatchExecutor protocol on the buffered (G_d) cube."""

    @staticmethod
    def _mixed_stream(rng, shape, count, fraction):
        from repro.workloads.streams import interleave_out_of_order

        updates = random_append_stream(rng, shape, count)
        return list(interleave_out_of_order(updates, fraction, seed=31))

    def test_update_many_fast_matches_metered_replay(self):
        rng = np.random.default_rng(301)
        shape = (16, 6, 6)
        stream = self._mixed_stream(rng, shape, 150, 0.25)
        points = np.array([p for p, _ in stream], dtype=np.int64)
        deltas = np.array([d for _, d in stream], dtype=np.int64)

        metered = BufferedEvolvingDataCube(shape[1:], num_times=shape[0])
        metered.update_many(points, deltas, mode="metered")
        fast = BufferedEvolvingDataCube(shape[1:], num_times=shape[0])
        fast.update_many(points, deltas, mode="fast")

        assert fast.buffered_updates == metered.buffered_updates
        assert fast.total_updates == metered.total_updates == len(stream)
        for _ in range(30):
            box = random_box(rng, shape)
            assert fast.query(box) == metered.query(box)

    def test_query_many_fast_bit_identical_to_metered(self):
        rng = np.random.default_rng(302)
        shape = (16, 6, 6)
        cube = BufferedEvolvingDataCube(shape[1:], num_times=shape[0])
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in self._mixed_stream(rng, shape, 180, 0.2):
            cube.update(point, delta)
            dense[point] += delta
        assert cube.buffered_updates > 0  # G_d genuinely participates
        boxes = [random_box(rng, shape) for _ in range(40)]
        fast = cube.query_many(boxes, mode="fast")
        metered = cube.query_many(boxes, mode="metered")
        assert fast == metered
        assert fast == [brute_box_sum(dense, box) for box in boxes]

    def test_query_many_fast_after_drain(self):
        rng = np.random.default_rng(303)
        shape = (16, 6, 6)
        cube = BufferedEvolvingDataCube(shape[1:], num_times=shape[0])
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in self._mixed_stream(rng, shape, 120, 0.3):
            cube.update(point, delta)
            dense[point] += delta
        cube.drain()
        assert cube.buffered_updates == 0
        boxes = [random_box(rng, shape) for _ in range(25)]
        fast = cube.query_many(boxes, mode="fast")
        assert fast == cube.query_many(boxes, mode="metered")
        assert fast == [brute_box_sum(dense, box) for box in boxes]

    def test_update_many_rejects_bad_shapes(self):
        cube = BufferedEvolvingDataCube((4,))
        with pytest.raises(Exception):
            cube.update_many([(0, 1, 2)], [1])
        with pytest.raises(Exception):
            cube.update_many([(0, 1)], [1, 2])
        with pytest.raises(Exception):
            cube.update_many([(0, 1)], [1], mode="warp")
        cube.update_many(np.empty((0, 2), dtype=np.int64), [])  # no-op


class TestDrainPolicy:
    def test_threshold_validated(self):
        with pytest.raises(Exception):
            BufferedEvolvingDataCube((4,), drain_threshold=0.0)
        with pytest.raises(Exception):
            BufferedEvolvingDataCube((4,), drain_threshold=1.5)

    def test_no_auto_drain_by_default(self):
        cube = BufferedEvolvingDataCube((4,))
        cube.update((9, 0), 1)
        for t in range(8):
            cube.update((t, 0), 1)
        assert cube.auto_drains == 0
        assert cube.buffered_updates == 8

    def test_auto_drain_fires_on_buffered_fraction(self):
        cube = BufferedEvolvingDataCube((4,), drain_threshold=0.5)
        for t in (0, 5, 10):
            cube.update((t, 0), 1)
        cube.update((2, 1), 1)  # 1/4 buffered: below threshold
        assert cube.auto_drains == 0
        cube.update((3, 1), 1)  # 2/5 < 0.5: still below
        assert cube.auto_drains == 0
        cube.update((4, 1), 1)  # 3/6 >= 0.5: drain fires
        assert cube.auto_drains == 1
        assert cube.buffered_updates == 0
        assert cube.query(Box((2, 0), (4, 3))) == 3

    def test_auto_drain_from_update_many(self):
        cube = BufferedEvolvingDataCube((4,), drain_threshold=0.4)
        points = np.array(
            [(0, 0), (10, 0), (3, 1), (5, 1), (7, 1)], dtype=np.int64
        )
        cube.update_many(points, np.ones(5, dtype=np.int64), mode="fast")
        assert cube.auto_drains == 1
        assert cube.buffered_updates == 0
        assert cube.total() == 5
