"""Tests for out-of-order corrections into the eCube (Section 2.5 MOLAP)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AgedOutError, AppendOrderError
from repro.core.types import Box
from repro.ecube.buffered import BufferedEvolvingDataCube
from repro.ecube.ecube import EvolvingDataCube

from tests.conftest import brute_box_sum, random_box
from tests.test_ecube_cube import random_append_stream


class TestApplyOutOfOrder:
    def test_rejects_non_historic_times(self):
        cube = EvolvingDataCube((4,))
        cube.update((5, 0), 1)
        with pytest.raises(AppendOrderError):
            cube.apply_out_of_order((5, 0), 1)  # == latest: not historic
        with pytest.raises(AppendOrderError):
            cube.apply_out_of_order((9, 0), 1)

    def test_rejects_non_occurring_times(self):
        cube = EvolvingDataCube((4,))
        cube.update((2, 0), 1)
        cube.update((8, 0), 1)
        with pytest.raises(AppendOrderError):
            cube.apply_out_of_order((5, 0), 1)

    def test_rejects_retired_region(self):
        cube = EvolvingDataCube((4,))
        for t in range(10):
            cube.update((t, t % 4), 1)
        cube.retire_before(6)
        with pytest.raises(AgedOutError):
            cube.apply_out_of_order((2, 0), 1)

    def test_correction_reaches_all_later_instances(self):
        cube = EvolvingDataCube((8,))
        for t in range(6):
            cube.update((t, t % 8), 10)
        cube.apply_out_of_order((2, 3), 7)
        assert cube.query(Box((0, 0), (1, 7))) == 20  # before: unaffected
        assert cube.query(Box((0, 0), (2, 7))) == 37
        assert cube.query(Box((0, 0), (5, 7))) == 67
        assert cube.query(Box((2, 3), (2, 3))) == 7

    def test_correction_after_conversions(self):
        """PS-converted cells must absorb the correction too."""
        rng = np.random.default_rng(110)
        shape = (12, 8, 8)
        cube = EvolvingDataCube(shape[1:], num_times=shape[0])
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in random_append_stream(rng, shape, 150):
            cube.update(point, delta)
            dense[point] += delta
        # convert broadly by querying a lot
        boxes = [random_box(rng, shape) for _ in range(40)]
        for box in boxes:
            assert cube.query(box) == brute_box_sum(dense, box)
        # now apply corrections at occurring historic times
        occurring = cube.occurring_times()
        for time in occurring[: len(occurring) - 1 : 2]:
            cell = (int(rng.integers(0, 8)), int(rng.integers(0, 8)))
            cube.apply_out_of_order((int(time),) + cell, 5)
            dense[(int(time),) + cell] += 5
        for box in boxes:
            assert cube.query(box) == brute_box_sum(dense, box), box

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_interleaved_corrections_and_queries(self, data):
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        shape = (10, 6, 6)
        cube = EvolvingDataCube(shape[1:], num_times=shape[0])
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in random_append_stream(rng, shape, 60):
            cube.update(point, delta)
            dense[point] += delta
        occurring = list(cube.occurring_times())
        for _ in range(data.draw(st.integers(1, 10))):
            if data.draw(st.booleans()) and len(occurring) > 1:
                time = occurring[
                    data.draw(st.integers(0, len(occurring) - 2))
                ]
                cell = tuple(
                    data.draw(st.integers(0, 5)) for _ in range(2)
                )
                delta = data.draw(st.integers(-4, 6))
                cube.apply_out_of_order((time,) + cell, delta)
                dense[(time,) + cell] += delta
            box = random_box(rng, shape)
            assert cube.query(box) == brute_box_sum(dense, box)


class TestBufferedCube:
    def test_routes_late_arrivals_to_buffer(self):
        cube = BufferedEvolvingDataCube((4, 4))
        cube.update((0, 1, 1), 5)
        cube.update((9, 2, 2), 3)
        cube.update((4, 1, 1), 7)  # late
        assert cube.buffered_updates == 1
        assert cube.query(Box((0, 0, 0), (9, 3, 3))) == 15
        assert cube.query(Box((3, 0, 0), (5, 3, 3))) == 7

    def test_drain_applies_occurring_keeps_rest(self):
        cube = BufferedEvolvingDataCube((4,))
        for t in (0, 3, 6, 9):
            cube.update((t, 1), 10)
        cube.update((3, 2), 5)  # occurring historic time
        cube.update((4, 2), 7)  # non-occurring historic time
        total_before = cube.total()
        applied, kept = cube.drain()
        assert (applied, kept) == (1, 1)
        assert cube.buffered_updates == 1
        assert cube.total() == total_before
        assert cube.query(Box((3, 0), (3, 3))) == 15
        assert cube.query(Box((4, 0), (5, 3))) == 7  # via the buffer

    def test_matches_reference_with_heavy_out_of_order(self):
        from repro.workloads.streams import interleave_out_of_order

        rng = np.random.default_rng(112)
        shape = (20, 6, 6)
        cube = BufferedEvolvingDataCube(shape[1:], num_times=shape[0])
        dense = np.zeros(shape, dtype=np.int64)
        updates = random_append_stream(rng, shape, 200)
        for point, delta in interleave_out_of_order(updates, 0.3, seed=9):
            cube.update(point, delta)
            dense[point] += delta
        boxes = [random_box(rng, shape) for _ in range(20)]
        for box in boxes:
            assert cube.query(box) == brute_box_sum(dense, box)
        cube.drain()
        for box in boxes:
            assert cube.query(box) == brute_box_sum(dense, box)
        # draining again is a no-op for the kept (non-occurring) updates
        applied, _kept = cube.drain()
        assert applied == 0

    def test_arity_checked(self):
        cube = BufferedEvolvingDataCube((4,))
        with pytest.raises(Exception):
            cube.update((0, 1, 2), 1)

    def test_empty_total(self):
        assert BufferedEvolvingDataCube((4,)).total() == 0
