"""Cross-module metamorphic properties.

Properties that must hold for *any* correct implementation of the paper's
semantics, regardless of representation -- checked across the cube
variants with hypothesis-driven inputs:

* additivity: disjoint boxes sum;
* same-time commutativity: the arrival order of equal-time updates is
  irrelevant;
* linearity: scaling every delta scales every aggregate;
* persistence idempotence: save/load is a fixed point;
* retirement invariance: allowed queries are unchanged by data aging.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Box
from repro.ecube.disk import DiskEvolvingDataCube
from repro.ecube.ecube import EvolvingDataCube
from repro.ecube.sparse import SparseEvolvingDataCube
from repro.storage.serialize import dumps_cube, loads_cube

from tests.conftest import brute_box_sum, random_box
from tests.test_ecube_cube import random_append_stream

VARIANTS = {
    "dense": lambda shape: EvolvingDataCube(shape[1:], num_times=shape[0]),
    "disk": lambda shape: DiskEvolvingDataCube(
        shape[1:], num_times=shape[0], page_size=128
    ),
    "sparse": lambda shape: SparseEvolvingDataCube(
        shape[1:], num_times=shape[0]
    ),
}


def _split_time(box: Box, cut: int) -> tuple[Box, Box]:
    left = Box(box.lower, (cut,) + box.upper[1:])
    right = Box((cut + 1,) + box.lower[1:], box.upper)
    return left, right


@pytest.mark.parametrize("variant", sorted(VARIANTS))
class TestAdditivity:
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_disjoint_time_split_sums(self, variant, data):
        shape = (16, 6, 6)
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        cube = VARIANTS[variant](shape)
        for point, delta in random_append_stream(rng, shape, 80):
            cube.update(point, delta)
        box = random_box(rng, shape)
        if box.lower[0] == box.upper[0]:
            return
        cut = data.draw(st.integers(box.lower[0], box.upper[0] - 1))
        left, right = _split_time(box, cut)
        assert cube.query(box) == cube.query(left) + cube.query(right)


@pytest.mark.parametrize("variant", sorted(VARIANTS))
class TestSameTimeCommutativity:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_equal_time_updates_commute(self, variant, seed):
        shape = (8, 5, 5)
        rng = np.random.default_rng(seed)
        updates = random_append_stream(rng, shape, 60)
        # shuffle within equal-time runs
        shuffled: list = []
        run: list = []
        for update in updates:
            if run and update[0][0] != run[-1][0][0]:
                rng.shuffle(run)
                shuffled.extend(run)
                run = []
            run.append(update)
        rng.shuffle(run)
        shuffled.extend(run)

        first = VARIANTS[variant](shape)
        second = VARIANTS[variant](shape)
        for point, delta in updates:
            first.update(point, delta)
        for point, delta in shuffled:
            second.update(point, delta)
        for _ in range(6):
            box = random_box(rng, shape)
            assert first.query(box) == second.query(box)


class TestLinearity:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31), factor=st.integers(2, 5))
    def test_scaled_deltas_scale_queries(self, seed, factor):
        shape = (12, 6, 6)
        rng = np.random.default_rng(seed)
        updates = random_append_stream(rng, shape, 70)
        base = EvolvingDataCube(shape[1:], num_times=shape[0])
        scaled = EvolvingDataCube(shape[1:], num_times=shape[0])
        for point, delta in updates:
            base.update(point, delta)
            scaled.update(point, delta * factor)
        for _ in range(8):
            box = random_box(rng, shape)
            assert scaled.query(box) == factor * base.query(box)


class TestPersistenceFixedPoint:
    def test_double_round_trip_stable(self):
        rng = np.random.default_rng(230)
        shape = (14, 6, 6)
        cube = EvolvingDataCube(shape[1:], num_times=shape[0])
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in random_append_stream(rng, shape, 90):
            cube.update(point, delta)
            dense[point] += delta
        boxes = [random_box(rng, shape) for _ in range(10)]
        for box in boxes:  # drive conversion so state is non-trivial
            cube.query(box)
        once = loads_cube(dumps_cube(cube))
        twice = loads_cube(dumps_cube(once))
        assert dumps_cube(once) == dumps_cube(twice)
        for box in boxes:
            assert twice.query(box) == brute_box_sum(dense, box)


class TestRetirementInvariance:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_allowed_queries_unchanged_by_aging(self, seed):
        shape = (20, 6, 6)
        rng = np.random.default_rng(seed)
        cube = EvolvingDataCube(shape[1:], num_times=shape[0])
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in random_append_stream(rng, shape, 100):
            cube.update(point, delta)
            dense[point] += delta
        boundary = 10
        allowed = []
        for _ in range(12):
            box = random_box(rng, shape)
            # answerable after retire_before(boundary): the upper instance
            # must be the kept boundary slice or newer, and the lower side
            # must be the open prefix or start at/after the boundary
            if box.upper[0] >= boundary - 1 and (
                box.lower[0] == 0 or box.lower[0] >= boundary
            ):
                allowed.append((box, cube.query(box)))
        cube.retire_before(boundary)
        for box, before in allowed:
            assert cube.query(box) == before == brute_box_sum(dense, box)
