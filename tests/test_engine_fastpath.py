"""Tests for the vectorized batch execution engine (fast mode).

The metered path is the paper's counted reference; the fast path must be
*observationally identical* -- same answers, same append discipline, same
errors -- while evaluating term sets as flat gathers.  These tests pin
that equivalence plus the supporting pieces: precomputed term tables,
bulk DDC->PS finalization, batch cache restamping, and the batch APIs of
all three front-ends.
"""

from __future__ import annotations

import os
import subprocess
import sys
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AgedOutError, AppendOrderError, DomainError
from repro.core.framework import AppendOnlyAggregator, BatchExecutor
from repro.core.types import Box
from repro.ecube import compiled
from repro.ecube.buffered import BufferedEvolvingDataCube
from repro.ecube.cache import SliceCache
from repro.ecube.disk import DiskEvolvingDataCube
from repro.ecube.ecube import EvolvingDataCube
from repro.ecube.fastpath import FastSliceEngine
from repro.ecube.sparse import SparseEvolvingDataCube
from repro.ecube.slices import ECubeSliceEngine
from repro.metrics import CostCounter
from repro.preagg.ddc import DDCTechnique
from repro.preagg.prefix_sum import PrefixSumTechnique
from repro.preagg.term_tables import (
    TermTable,
    TermTableSet,
    ddc_gather_counts,
    fenwick_term_counts,
    gathered_cell_count,
    ps_gather_counts,
)

from tests.conftest import brute_box_sum, random_box


def random_append_stream(rng, shape, count):
    times = np.sort(rng.integers(0, shape[0], size=count))
    updates = []
    for t in times:
        cell = tuple(int(rng.integers(0, n)) for n in shape[1:])
        updates.append(((int(t),) + cell, int(rng.integers(-5, 9))))
    return updates


def build_metered(shape, updates):
    cube = EvolvingDataCube(shape[1:], num_times=shape[0], counter=CostCounter())
    for point, delta in updates:
        cube.update(point, delta)
    return cube


# -- term tables -------------------------------------------------------------


class TestTermTables:
    @given(n=st.integers(1, 64), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_range_terms_equal_prefix_difference(self, n, data):
        """range_terms(l, u) == prefix_terms(u) - prefix_terms(l-1)

        as a *signed multiset*: DDC's direct range algorithm only skips
        cells shared by both prefix descents, it never changes the sum's
        term structure otherwise.
        """
        technique = DDCTechnique(n)
        upper = data.draw(st.integers(0, n - 1))
        lower = data.draw(st.integers(0, upper))
        signed = Counter()
        for index, coeff in technique.range_terms(lower, upper):
            signed[index] += coeff
        expected = Counter()
        for index, coeff in technique.prefix_terms(upper):
            expected[index] += coeff
        for index, coeff in technique.prefix_terms(lower - 1):
            expected[index] -= coeff
        assert {i: c for i, c in signed.items() if c} == {
            i: c for i, c in expected.items() if c
        }

    @given(n=st.integers(1, 40), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_csr_tables_match_technique(self, n, data):
        technique = DDCTechnique(n)
        table = TermTable(technique)
        k = data.draw(st.integers(-1, n - 1))
        indices, coeffs = table.prefix_slice(k)
        assert [(int(i), int(c)) for i, c in zip(indices, coeffs)] == (
            technique.prefix_terms(k)
        )
        i = data.draw(st.integers(0, n - 1))
        indices, coeffs = table.update_slice(i)
        assert [(int(j), int(c)) for j, c in zip(indices, coeffs)] == (
            technique.update_terms(i)
        )
        upper = data.draw(st.integers(0, n - 1))
        lower = data.draw(st.integers(0, upper))
        indices, coeffs = table.range_slice(lower, upper)
        assert [(int(j), int(c)) for j, c in zip(indices, coeffs)] == (
            technique.range_terms(lower, upper)
        )

    def test_range_eval_on_ddc_array(self, rng):
        shape = (9, 7, 5)
        dense = rng.integers(-4, 9, size=shape).astype(np.int64)
        ddc = dense
        techniques = [DDCTechnique(n) for n in shape]
        for axis, technique in enumerate(techniques):
            ddc = technique.aggregate(ddc, axis=axis)
        tables = TermTableSet(techniques)
        for _ in range(25):
            box = random_box(rng, shape)
            assert tables.range_eval(ddc, box.lower, box.upper) == (
                brute_box_sum(dense, box)
            )
            assert tables.prefix_eval(ddc, box.upper) == brute_box_sum(
                dense, Box((0,) * len(shape), box.upper)
            )


# -- fast/metered equivalence ------------------------------------------------


class TestFastMeteredEquivalence:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_query_many_matches_metered(self, seed):
        rng = np.random.default_rng(seed)
        shape = (6, 5, 4)
        updates = random_append_stream(rng, shape, 60)
        metered = build_metered(shape, updates)
        fast = build_metered(shape, updates)
        boxes = [random_box(rng, shape) for _ in range(12)]
        # convert a few cells first so mixed DDC/PS slices are exercised
        metered.query(boxes[0])
        fast.query(boxes[0])
        expected = [metered.query(box) for box in boxes]
        assert fast.query_many(boxes, mode="fast") == expected
        assert fast.query_many(boxes, mode="metered") == expected
        # fast queries must not have perturbed subsequent metered answers
        assert [fast.query(box) for box in boxes] == expected

    def test_fast_queries_never_charge_more_than_metered(self, rng):
        shape = (8, 5, 5)
        updates = random_append_stream(rng, shape, 80)
        metered = build_metered(shape, updates)
        fast = build_metered(shape, updates)
        boxes = [random_box(rng, shape) for _ in range(30)]
        before = metered.counter.snapshot()
        expected = [metered.query(box) for box in boxes]
        metered_cells = (metered.counter.snapshot() - before).cell_accesses
        before = fast.counter.snapshot()
        assert fast.query_many(boxes, mode="fast") == expected
        fast_cells = (fast.counter.snapshot() - before).cell_accesses
        # the fast engine answers from frozen arrays; its metered charge
        # is the stamps it reads, never a whole-slice freeze
        assert 0 < fast_cells <= metered_cells, (fast_cells, metered_cells)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_update_many_matches_metered_stream(self, seed):
        rng = np.random.default_rng(seed)
        shape = (6, 4, 4)
        updates = random_append_stream(rng, shape, 50)
        metered = build_metered(shape, updates)
        fast = EvolvingDataCube(
            shape[1:], num_times=shape[0], counter=CostCounter()
        )
        points = np.array([point for point, _ in updates], dtype=np.int64)
        deltas = np.array([delta for _, delta in updates], dtype=np.int64)
        fast.update_many(points, deltas, mode="fast")
        assert np.array_equal(fast.cache.values, metered.cache.values)
        boxes = [random_box(rng, shape) for _ in range(10)]
        assert [fast.query(b) for b in boxes] == [metered.query(b) for b in boxes]
        assert fast.total() == metered.total()

    def test_query_many_against_dense_truth(self, rng):
        shape = (8, 6, 5)
        updates = random_append_stream(rng, shape, 120)
        dense = np.zeros(shape, dtype=np.int64)
        for point, delta in updates:
            dense[point] += delta
        dense_ps = dense.cumsum(axis=0)
        cube = build_metered(shape, updates)
        boxes = [random_box(rng, shape) for _ in range(40)]
        expected = []
        for box in boxes:
            upper = brute_box_sum(
                dense_ps[box.upper[0]], box.drop_first()
            )
            lower = (
                brute_box_sum(dense_ps[box.lower[0] - 1], box.drop_first())
                if box.lower[0] > 0
                else 0
            )
            expected.append(upper - lower)
        assert cube.query_many(boxes, mode="fast") == expected

    def test_update_many_enforces_append_order_and_domain(self):
        cube = EvolvingDataCube((4, 4), num_times=10)
        with pytest.raises(AppendOrderError):
            cube.update_many([(3, 0, 0), (1, 0, 0)], [1, 1])
        with pytest.raises(DomainError):
            cube.update_many([(0, 0, 4)], [1])
        with pytest.raises(DomainError):
            cube.update_many([(0, 0)], [1])
        cube.update_many([(5, 1, 1)], [2])
        with pytest.raises(AppendOrderError):
            cube.update_many([(3, 0, 0)], [1])

    def test_query_many_validates_arity(self):
        cube = EvolvingDataCube((4, 4))
        cube.update((0, 1, 1), 3)
        with pytest.raises(DomainError):
            cube.query_many([Box((0, 0), (1, 1))])


# -- bulk finalization and copy sync ----------------------------------------


class TestBulkFinalize:
    def test_finalize_makes_slice_fully_ps(self, rng):
        shape = (5, 6, 6)
        updates = random_append_stream(rng, shape, 60)
        cube = build_metered(shape, updates)
        reference = build_metered(shape, updates)
        finalized = 0
        for index in range(cube.num_slices - 1):
            if cube.bulk_finalize_slice(index):
                finalized += 1
                _, payload = cube.directory.at_index(index)
                assert payload.ps_count == cube._num_slice_cells
                assert bool(payload.ps_flags.all())
        assert finalized > 0
        boxes = [random_box(rng, shape) for _ in range(30)]
        assert [cube.query(b) for b in boxes] == [
            reference.query(b) for b in boxes
        ]

    def test_finalize_refuses_latest_slice(self):
        cube = EvolvingDataCube((4,))
        cube.update((0, 1), 1)
        assert cube.bulk_finalize_slice(cube.num_slices - 1) is False

    def test_sync_copies_completes_history(self, rng):
        shape = (6, 5, 4)
        updates = random_append_stream(rng, shape, 40)
        cube = EvolvingDataCube(
            shape[1:], num_times=shape[0], counter=CostCounter()
        )
        points = np.array([p for p, _ in updates], dtype=np.int64)
        deltas = np.array([d for _, d in updates], dtype=np.int64)
        cube.update_many(points, deltas, mode="fast")
        cube.sync_copies()
        assert cube.incomplete_historic_instances() == 0
        reference = build_metered(shape, updates)
        boxes = [random_box(rng, shape) for _ in range(15)]
        assert [cube.query(b) for b in boxes] == [
            reference.query(b) for b in boxes
        ]


class TestBulkRestamp:
    def test_matches_per_cell_restamp(self, counter):
        shape = (4, 5)
        a = SliceCache(shape, counter)
        b = SliceCache(shape, CostCounter())
        for _ in range(3):
            a.notice_new_time()
            b.notice_new_time()
        cells = [(0, 0), (1, 3), (3, 4)]
        flat = np.array([np.ravel_multi_index(c, shape) for c in cells])
        a.bulk_restamp(flat, a.last_index)
        for cell in cells:
            b.restamp(cell, b.last_index)
        assert np.array_equal(a.stamps, b.stamps)
        assert a.pending == b.pending
        assert a.incomplete_instances() == b.incomplete_instances()

    def test_rejects_stamp_regression(self, counter):
        cache = SliceCache((4,), counter)
        cache.notice_new_time()
        cache.restamp((2,), 1)
        with pytest.raises(DomainError):
            cache.bulk_restamp(np.array([2]), 0)


# -- satellite regressions ---------------------------------------------------


class TestDegenerateRanges:
    def test_degenerate_boxes_return_zero_without_reads(self):
        engine = ECubeSliceEngine((6, 4))

        def read(cell):
            raise AssertionError(f"degenerate box read cell {cell}")

        # fully below and fully above the domain in one dimension (Box
        # construction itself forbids lower > upper, so degeneracy can
        # only arise from out-of-domain coordinates)
        for box in (
            Box((0, -5), (5, -1)),
            Box((6, 0), (9, 3)),
            Box((-9, -5), (-1, -2)),
        ):
            assert engine.range_query(box, read, None) == 0

    def test_nondegenerate_boxes_still_clip(self, rng):
        shape = (6, 4)
        dense = rng.integers(0, 9, size=shape).astype(np.int64)
        cube = EvolvingDataCube(shape)
        # a single occurring time; overhang must clip, not zero out
        for cell in np.ndindex(shape):
            if dense[cell]:
                cube.update((0,) + cell, int(dense[cell]))
        box = Box((0, 2, 1), (0, 99, 99))
        assert cube.query(box) == int(dense[2:, 1:].sum())

    def test_fast_entry_points_guard_degenerate_boxes(self, rng):
        """ps_range, mixed_range, and latest_range must all mirror the
        metered engine's empty-range early return instead of tripping a
        term-table domain error on out-of-domain coordinates."""
        shape = (6, 4)
        engine = FastSliceEngine(shape)
        values = rng.integers(1, 9, size=shape).astype(np.int64)
        cache = rng.integers(1, 9, size=shape).astype(np.int64)
        flags = np.zeros(shape, dtype=bool)
        stamps = np.full(shape, 5, dtype=np.int64)
        for box in (
            Box((0, -5), (5, -1)),
            Box((6, 0), (9, 3)),
            Box((-9, -5), (-1, -2)),
        ):
            assert engine.ps_range(values, box) == (0, 0)
            assert engine.latest_range(cache, box) == (0, 0)
            assert engine.mixed_range(box, values, flags, stamps, cache, 2) == (
                0,
                0,
            )

    def test_fast_query_many_matches_metered_on_overhang_boxes(self, rng):
        shape = (8, 6, 4)
        updates = random_append_stream(rng, shape, 60)
        metered = build_metered(shape, updates)
        fast = build_metered(shape, updates)
        # convert a few slices so all three fast strategies are exercised
        for _ in range(10):
            box = random_box(rng, shape)
            metered.query(box)
            fast.query(box)
        boxes = [
            Box((2, -2, 0), (5, 99, 99)),  # overhang both sides: clips
            Box((0, 0, 0), (99, 99, 99)),  # whole-domain overhang
            random_box(rng, shape),
        ]
        expected = [metered.query(box) for box in boxes]
        assert fast.query_many(boxes, mode="fast") == expected
        # cube-level empty boxes fail identically in both modes
        empty = Box((0, 0, -5), (7, 5, -1))
        with pytest.raises(DomainError):
            metered.query(empty)
        with pytest.raises(DomainError):
            fast.query_many([empty], mode="fast")


class TestRetirementGuard:
    def test_retired_slice_raises_aged_out(self):
        cube = EvolvingDataCube((4,))
        for t in range(3):
            cube.update((t, 1), 1)
        _, payload = cube.directory.at_index(0)
        payload.retire()
        with pytest.raises(AgedOutError):
            payload.data()
        assert payload.retired
        assert payload.values is None and payload.ps_flags is None

    def test_fast_query_into_retired_region_raises(self):
        cube = EvolvingDataCube((4,))
        for t in range(4):
            cube.update((t, 1), 1)
        cube.retire_before(2)
        # time 0's instance is retired (time 1's survives as the boundary)
        box = Box((0, 0), (0, 3))
        with pytest.raises(AgedOutError):
            cube.query_many([box], mode="fast")
        with pytest.raises(AgedOutError):
            cube.query(box)


# -- batch protocol across front-ends ----------------------------------------


class TestBatchExecutorProtocol:
    def test_all_front_ends_satisfy_protocol(self):
        assert isinstance(EvolvingDataCube((4,)), BatchExecutor)
        assert isinstance(DiskEvolvingDataCube((4,)), BatchExecutor)
        assert isinstance(SparseEvolvingDataCube((4,)), BatchExecutor)
        assert isinstance(BufferedEvolvingDataCube((4,)), BatchExecutor)
        assert isinstance(AppendOnlyAggregator(), BatchExecutor)

    def test_sparse_batch_matches_singles(self, rng):
        shape = (6, 8, 4)
        updates = random_append_stream(rng, shape, 40)
        single = SparseEvolvingDataCube(shape[1:], counter=CostCounter())
        batched = SparseEvolvingDataCube(shape[1:], counter=CostCounter())
        for point, delta in updates:
            single.update(point, delta)
        batched.update_many(
            [point for point, _ in updates], [d for _, d in updates]
        )
        boxes = [random_box(rng, shape) for _ in range(15)]
        expected = [single.query(box) for box in boxes]
        assert batched.query_many(boxes) == expected
        assert batched.query_many(boxes, mode="metered") == expected

    def test_aggregator_batch_matches_singles(self, rng):
        shape = (8, 16)
        updates = random_append_stream(rng, shape, 50)
        single = AppendOnlyAggregator()
        batched = AppendOnlyAggregator()
        for point, delta in updates:
            single.update(point, delta)
        batched.update_many(
            [point for point, _ in updates], [d for _, d in updates]
        )
        boxes = [random_box(rng, shape) for _ in range(20)]
        assert batched.query_many(boxes) == [single.query(b) for b in boxes]

    def test_disk_batch_matches_singles(self, rng):
        shape = (6, 8, 4)
        updates = random_append_stream(rng, shape, 40)
        single = DiskEvolvingDataCube(shape[1:], counter=CostCounter())
        batched = DiskEvolvingDataCube(shape[1:], counter=CostCounter())
        for point, delta in updates:
            single.update(point, delta)
        batched.update_many(
            [point for point, _ in updates], [d for _, d in updates]
        )
        boxes = [random_box(rng, shape) for _ in range(15)]
        singles_pages = 0
        expected = []
        for box in boxes:
            expected.append(single.query(box))
            singles_pages += single.last_op_page_accesses
        assert batched.query_many(boxes) == expected
        # the shared tracker charges each page once per batch
        assert 0 < batched.last_op_page_accesses <= singles_pages


# -- fast engine internals ---------------------------------------------------


class TestFastSliceEngine:
    def test_ddc_to_ps_roundtrip(self, rng):
        shape = (7, 5)
        dense = rng.integers(-3, 8, size=shape).astype(np.int64)
        engine = FastSliceEngine(shape)
        ddc = dense
        for axis, technique in enumerate(engine.ddc_techniques):
            ddc = technique.aggregate(ddc, axis=axis)
        ps = engine.ddc_to_ps(ddc)
        assert np.array_equal(ps, dense.cumsum(axis=0).cumsum(axis=1))

    def test_update_flat_indices_match_engine(self, rng):
        shape = (9, 6)
        fast = FastSliceEngine(shape)
        slice_engine = ECubeSliceEngine(shape)
        for _ in range(20):
            cell = tuple(int(rng.integers(0, n)) for n in shape)
            expected = sorted(
                np.ravel_multi_index(c, shape)
                for c in slice_engine.update_cells(cell)
            )
            assert sorted(fast.update_flat_indices(cell).tolist()) == expected

    def test_fast_ops_counted(self):
        cube = EvolvingDataCube((4, 4))
        cube.update_many([(0, 1, 1), (1, 2, 2)], [1, 2], mode="fast")
        cube.query_many([Box((0, 0, 0), (1, 3, 3))], mode="fast")
        assert cube.counter.snapshot().fast_ops == 3


class TestCompiledLayer:
    """The compiled-kernel layer: backend selection and clean fallback."""

    def test_backend_name_matches_active_flag(self):
        name = compiled.backend_name()
        assert name in ("numba", "numpy")
        assert (name == "numba") == compiled.NUMBA_ACTIVE

    def test_env_override_forces_numpy_backend(self):
        code = (
            "from repro.ecube import compiled\n"
            "assert compiled.backend_name() == 'numpy', compiled.backend_name()\n"
            "assert not compiled.NUMBA_ACTIVE\n"
        )
        env = dict(os.environ, REPRO_NO_NUMBA="1")
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env,
        )
        assert result.returncode == 0, result.stderr

    def test_fallback_import_neither_warns_nor_fails(self):
        # importing and exercising the engine with the compiled layer
        # unavailable must be silent: -W error turns any warning fatal
        code = (
            "import repro\n"
            "from repro.core.types import Box\n"
            "from repro.ecube.ecube import EvolvingDataCube\n"
            "cube = EvolvingDataCube((4, 4))\n"
            "cube.update_many([(0, 1, 1), (1, 2, 2)], [1, 2], mode='fast')\n"
            "print(cube.query_many([Box((0, 0, 0), (1, 3, 3))], mode='fast')[0])\n"
        )
        env = dict(os.environ, REPRO_NO_NUMBA="1")
        result = subprocess.run(
            [sys.executable, "-W", "error", "-c", code],
            capture_output=True, text=True, env=env,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "3"
        assert result.stderr == ""


class TestGatherCountParity:
    """Closed-form bulk charges equal the per-box term-table tallies."""

    @pytest.mark.parametrize("n", [1, 2, 5, 8, 16, 33, 64, 100])
    def test_fenwick_term_counts_closed_form(self, n):
        technique = DDCTechnique(n)
        pairs = [
            (low, up) for low in range(n) for up in range(low, n)
        ]
        lowers = np.array([p[0] for p in pairs], dtype=np.int64)
        uppers = np.array([p[1] for p in pairs], dtype=np.int64)
        counts = fenwick_term_counts(lowers, uppers)
        for (low, up), count in zip(pairs, counts.tolist()):
            assert count == len(technique.range_terms(low, up)), (low, up)

    def test_gather_counts_match_gathered_cell_count(self, rng):
        shape = (13, 7, 21)
        ddc_tables = TermTableSet([DDCTechnique(n) for n in shape])
        ps_tables = TermTableSet([PrefixSumTechnique(n) for n in shape])
        lowers = np.column_stack(
            [rng.integers(0, n, size=50) for n in shape]
        ).astype(np.int64)
        uppers = np.column_stack(
            [rng.integers(0, n, size=50) for n in shape]
        ).astype(np.int64)
        uppers = np.maximum(lowers, uppers)
        ddc_counts = ddc_gather_counts(lowers, uppers)
        ps_counts = ps_gather_counts(lowers)
        for i in range(lowers.shape[0]):
            low, up = lowers[i].tolist(), uppers[i].tolist()
            assert ddc_counts[i] == gathered_cell_count(
                ddc_tables.range_arrays(low, up)[0]
            )
            assert ps_counts[i] == gathered_cell_count(
                ps_tables.range_arrays(low, up)[0]
            )
