"""Sharded serving: differential equivalence, shared memory, fault paths.

The contract under test is exact: a :class:`ShardedCube` over any grid
partition answers every query bit-identically to one unsharded
:class:`SnapshotCube` fed the same stream -- through appends,
out-of-order corrections, drains and retirement.  The inline-mode tests
prove the decomposition itself (no processes involved); the process
tests cover the pipes, the shared-memory epoch export and the crash /
leak discipline.  Process tests are deliberately small: this suite runs
under GNU timeout in CI and must stay cheap on a single core.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrent import SnapshotCube
from repro.core.errors import AgedOutError, DomainError, ShardUnavailableError
from repro.core.types import Box
from repro.ecube.buffered import BufferedEvolvingDataCube
from repro.sharding import (
    BlockCache,
    EpochExporter,
    GridPartitioner,
    ShardedCube,
    leaked_segments,
)
from repro.sharding.shm import descriptor_blocks

from .conftest import random_box

BACKENDS = ("dense", "paged", "sparse")


def _mixed_stream(rng, shape, updates, shuffle=0.1):
    """A time-sorted stream with a fraction swapped out of order."""
    num_times = shape[0]
    times = np.sort(rng.integers(0, num_times, size=updates))
    columns = [times]
    for size in shape[1:]:
        columns.append(rng.integers(0, size, size=updates))
    points = np.column_stack(columns).astype(np.int64)
    deltas = rng.integers(1, 6, size=updates).astype(np.int64)
    index = np.arange(updates)
    swap = rng.choice(updates, size=max(1, int(shuffle * updates)), replace=False)
    index[np.sort(swap)] = swap
    return points[index], deltas[index]


def _differential(oracle, cube, rng, shape, points, deltas, batches=4):
    """Drive both cubes through the same mixed workload, comparing answers."""
    for batch in np.array_split(np.arange(len(points)), batches):
        oracle.update_many(points[batch], deltas[batch])
        cube.update_many(points[batch], deltas[batch])
        boxes = [random_box(rng, shape) for _ in range(40)]
        assert cube.query_many(boxes) == oracle.query_many(boxes)
        assert cube.total() == oracle.total()
    applied_o, _ = oracle.drain()
    applied_c, _ = cube.drain()
    assert applied_c == applied_o
    boxes = [random_box(rng, shape) for _ in range(40)]
    assert cube.query_many(boxes) == oracle.query_many(boxes)
    oracle.retire_before(shape[0] // 2)
    cube.retire_before(shape[0] // 2)
    for box in [random_box(rng, shape) for _ in range(60)]:
        try:
            expected = oracle.query(box)
        except AgedOutError:
            expected = None
        try:
            got = cube.query(box)
        except AgedOutError:
            got = None
        assert got == expected, box


class TestInlineDifferential:
    """Decomposition correctness, no processes: fast and deterministic."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_workload_matches_snapshot_oracle(self, rng, backend):
        shape = (16, 6, 7)
        oracle = SnapshotCube(BufferedEvolvingDataCube(shape[1:], backend=backend))
        cube = ShardedCube(
            shape[1:], shards=3, processes=False, backend=backend
        )
        points, deltas = _mixed_stream(rng, shape, updates=160)
        _differential(oracle, cube, rng, shape, points, deltas)
        cube.close()
        oracle.close()

    def test_single_update_and_out_of_order_routing(self, rng):
        shape = (10, 5, 5)
        oracle = SnapshotCube(BufferedEvolvingDataCube(shape[1:]))
        cube = ShardedCube(shape[1:], shards=4, processes=False)
        for t in (0, 1, 3, 3, 7):
            point = (t, int(rng.integers(5)), int(rng.integers(5)))
            oracle.update(point, 2)
            cube.update(point, 2)
        correction = (2, 4, 4)
        oracle.apply_out_of_order(correction, 5)
        cube.apply_out_of_order(correction, 5)
        boxes = [random_box(rng, shape) for _ in range(30)]
        assert cube.query_many(boxes) == oracle.query_many(boxes)
        assert cube.total() == oracle.total()
        cube.close()
        oracle.close()

    def test_domain_errors_are_validated_at_the_router(self):
        cube = ShardedCube((4, 4), shards=2, processes=False)
        with pytest.raises(DomainError):
            cube.update((0, 9, 0), 1)  # cell outside the domain
        with pytest.raises(DomainError):
            cube.update((0, 1), 1)  # wrong arity
        with pytest.raises(DomainError):
            cube.query(Box((0, 5, 0), (0, 9, 0)))  # empty after clipping
        # boxes overhanging the domain clip exactly like the oracle
        cube.update((0, 1, 1), 3)
        assert cube.query(Box((0, 0, 0), (0, 7, 7))) == 3
        cube.close()

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_any_grid_gives_identical_answers(self, data):
        """Partition invariance: the grid is not allowed to matter."""
        shape = (8, 6, 6)
        grid = (
            data.draw(st.integers(1, 3), label="grid0"),
            data.draw(st.integers(1, 3), label="grid1"),
        )
        seed = data.draw(st.integers(0, 2**20), label="seed")
        rng = np.random.default_rng(seed)
        points, deltas = _mixed_stream(rng, shape, updates=60)
        oracle = SnapshotCube(BufferedEvolvingDataCube(shape[1:]))
        cube = ShardedCube(
            shape[1:],
            partitioner=GridPartitioner(shape[1:], grid),
            processes=False,
        )
        oracle.update_many(points, deltas)
        cube.update_many(points, deltas)
        boxes = [random_box(rng, shape) for _ in range(25)]
        assert cube.query_many(boxes) == oracle.query_many(boxes)
        oracle.drain()
        cube.drain()
        assert cube.query_many(boxes) == oracle.query_many(boxes)
        assert cube.total() == oracle.total()
        cube.close()
        oracle.close()


class TestSharedMemoryEpochs:
    def test_epoch_roundtrip_through_shared_memory(self, rng):
        shape = (12, 5, 5)
        cube = BufferedEvolvingDataCube(shape[1:])
        snap = SnapshotCube(cube)
        exporter = EpochExporter(snap, tag="t0-")
        cache = BlockCache()
        try:
            points, deltas = _mixed_stream(rng, shape, updates=80)
            for batch in np.array_split(np.arange(len(points)), 3):
                snap.update_many(points[batch], deltas[batch])
                descriptor = snap._current.to_shared_memory(exporter)
                remote = type(snap._current).from_shared_memory(
                    descriptor, cache
                )
                boxes = [random_box(rng, shape) for _ in range(30)]
                with snap.pin() as view:
                    expected = view.query_many(boxes)
                from repro.concurrent.vectorized import (
                    epoch_query_many,
                    prepare_epoch,
                )
                answers = epoch_query_many(prepare_epoch(remote), boxes)
                assert np.array_equal(answers, expected)
        finally:
            # drop the epoch's views before closing the mappings they alias
            del remote
            cache.close_all()
            exporter.close()
        assert not leaked_segments()

    def test_only_the_current_epoch_exports(self, rng):
        cube = BufferedEvolvingDataCube((4, 4))
        snap = SnapshotCube(cube)
        exporter = EpochExporter(snap, tag="t1-")
        try:
            snap.update((0, 1, 1), 3)
            stale = snap._current
            snap.update((1, 2, 2), 4)
            with pytest.raises(DomainError):
                stale.to_shared_memory(exporter)
            descriptor = snap._current.to_shared_memory(exporter)
            assert descriptor_blocks(descriptor)
        finally:
            exporter.close()
        assert not leaked_segments()


class TestProcessMode:
    """Worker processes + shared-memory serving; kept intentionally small."""

    @pytest.mark.parametrize("readers", [0, 1])
    def test_differential_vs_oracle(self, rng, readers):
        shape = (12, 6, 6)
        oracle = SnapshotCube(BufferedEvolvingDataCube(shape[1:]))
        cube = ShardedCube(
            shape[1:], shards=2, processes=True, readers=readers, timeout=120.0
        )
        try:
            points, deltas = _mixed_stream(rng, shape, updates=120)
            _differential(oracle, cube, rng, shape, points, deltas, batches=3)
        finally:
            cube.close()
            oracle.close()
        assert not leaked_segments()

    def test_crashed_worker_raises_instead_of_hanging(self, rng):
        cube = ShardedCube((6, 6), shards=2, processes=True, timeout=120.0)
        try:
            points, deltas = _mixed_stream(rng, (8, 6, 6), updates=40, shuffle=0)
            cube.update_many(points, deltas)
            victim = cube.router.handles[0]
            victim.process.terminate()
            victim.process.join(timeout=30)
            with pytest.raises(ShardUnavailableError):
                cube.update_many(points, deltas)
            with pytest.raises(ShardUnavailableError):
                cube.query_many(
                    [random_box(np.random.default_rng(0), (8, 6, 6))]
                )
        finally:
            cube.close()
        # the sweep reclaims segments orphaned by the killed worker
        assert not leaked_segments()

    def test_durable_shards_recover(self, rng, tmp_path):
        shape = (10, 6, 6)
        points, deltas = _mixed_stream(rng, shape, updates=80)
        boxes = [random_box(rng, shape) for _ in range(30)]
        cube = ShardedCube(
            shape[1:],
            shards=2,
            processes=True,
            durable_dir=tmp_path / "fleet",
            fsync="off",
            timeout=120.0,
        )
        try:
            cube.update_many(points, deltas)
            expected = cube.query_many(boxes)
            expected_total = cube.total()
        finally:
            cube.close()
        recovered = ShardedCube.recover(
            tmp_path / "fleet", processes=True, timeout=120.0
        )
        try:
            assert recovered.query_many(boxes) == expected
            assert recovered.total() == expected_total
            # the global order state survives: draining the buffered
            # corrections still matches a fresh oracle fed the stream
            oracle = SnapshotCube(BufferedEvolvingDataCube(shape[1:]))
            oracle.update_many(points, deltas)
            applied_o, _ = oracle.drain()
            applied_r, _ = recovered.drain()
            assert applied_r == applied_o
            assert recovered.query_many(boxes) == oracle.query_many(boxes)
            oracle.close()
        finally:
            recovered.close()
        assert not leaked_segments()


class TestServeStartupSweep:
    def test_sweeps_segments_leaked_by_a_killed_server(self):
        """``repro serve`` startup unlinks orphaned segments of our prefix.

        A SIGKILLed server never drops its epoch refcounts; the next
        startup must reclaim /dev/shm rather than exhaust it.
        """
        from multiprocessing import shared_memory

        from repro.__main__ import _sweep_leaked_shm
        from repro.sharding.shm import SHM_PREFIX, _unregister

        if not leaked_segments():
            pass  # a clean slate; other suites assert this too
        orphan = shared_memory.SharedMemory(
            create=True, name=f"{SHM_PREFIX}-test-orphan-0", size=64
        )
        _unregister(orphan)  # simulate the dead owner: tracker forgot it
        orphan.close()
        try:
            assert orphan.name in leaked_segments()
            swept = _sweep_leaked_shm()
            assert orphan.name in swept
            assert not leaked_segments()
            # idempotent: a clean start sweeps nothing
            assert _sweep_leaked_shm() == []
        finally:
            try:
                orphan.unlink()
            except FileNotFoundError:
                pass
