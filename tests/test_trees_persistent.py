"""Tests for the persistent (multiversion) aggregate tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError
from repro.trees.persistent import PersistentAggregateTree


class TestCurrentVersion:
    def test_empty(self):
        tree = PersistentAggregateTree()
        assert len(tree) == 0
        assert tree.total() == 0
        assert tree.get(3) == 0
        assert tree.range_sum(0, 10) == 0

    def test_updates_accumulate(self):
        tree = PersistentAggregateTree()
        tree.update(5, 3)
        tree.update(5, -1)
        assert tree.get(5) == 2
        assert len(tree) == 1

    def test_inverted_range_rejected(self):
        tree = PersistentAggregateTree()
        with pytest.raises(DomainError):
            tree.range_sum(4, 2)

    @settings(max_examples=40, deadline=None)
    @given(
        updates=st.lists(
            st.tuples(st.integers(-50, 50), st.integers(-5, 5)),
            min_size=1,
            max_size=200,
        )
    )
    def test_matches_dict_model(self, updates):
        tree = PersistentAggregateTree()
        model: dict[int, int] = {}
        for key, delta in updates:
            tree.update(key, delta)
            model[key] = model.get(key, 0) + delta
        assert tree.total() == sum(model.values())
        for low, up in [(-50, 50), (-10, 10), (0, 0), (-50, -1)]:
            expected = sum(v for k, v in model.items() if low <= k <= up)
            assert tree.range_sum(low, up) == expected
        assert list(tree.snapshot().items()) == sorted(model.items())


class TestPersistence:
    def test_snapshots_are_immutable(self):
        tree = PersistentAggregateTree()
        tree.update(1, 10)
        old = tree.snapshot()
        tree.update(1, 5)
        tree.update(2, 7)
        assert old.get(1) == 10
        assert old.get(2) == 0
        assert old.total() == 10
        assert tree.total() == 22

    def test_many_versions_queryable(self):
        tree = PersistentAggregateTree()
        snapshots = []
        rng = np.random.default_rng(9)
        model: dict[int, int] = {}
        models = []
        for step in range(120):
            key = int(rng.integers(0, 40))
            delta = int(rng.integers(-3, 4))
            tree.update(key, delta)
            model[key] = model.get(key, 0) + delta
            snapshots.append(tree.snapshot())
            models.append(dict(model))
        for snapshot, snapshot_model in zip(snapshots[::7], models[::7]):
            for low, up in [(0, 39), (5, 20), (38, 39)]:
                expected = sum(
                    v for k, v in snapshot_model.items() if low <= k <= up
                )
                assert snapshot.range_sum(low, up) == expected

    def test_snapshot_is_cheap(self):
        tree = PersistentAggregateTree()
        for key in range(1000):
            tree.update(key, 1)
        before = tree.node_accesses
        for _ in range(100):
            tree.snapshot()
        assert tree.node_accesses == before  # O(1): just the root pointer


class TestBalance:
    def test_depth_logarithmic_for_sequential_keys(self):
        tree = PersistentAggregateTree()
        n = 4096
        for key in range(n):
            tree.update(key, 1)
        # measure depth by probing the deepest path cost
        tree.node_accesses = 0
        tree.get(n - 1)
        # expected treap depth ~ 2 ln n ~ 17; generous bound
        assert tree.node_accesses <= 60

    def test_range_query_cost_logarithmic(self):
        tree = PersistentAggregateTree()
        n = 4096
        for key in range(n):
            tree.update(key, 1)
        tree.node_accesses = 0
        assert tree.range_sum(10, 4000) == 3991
        assert tree.node_accesses <= 120
