"""Smoke tests: every shipped example must run end to end.

The examples are part of the public deliverable; importing them as modules
and running ``main()`` keeps them from rotting.  Output is captured (the
examples print their own narration).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    # the deliverable promises a quickstart plus domain scenarios
    assert "quickstart" in EXAMPLES
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"
