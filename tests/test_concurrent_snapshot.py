"""Snapshot-isolated concurrent reads: racing stress + unit semantics.

The racing half drives :func:`repro.concurrent.run_stress`: barrier-
started reader threads against one scripted writer on every backend,
with each recorded answer validated post-join against an exact oracle
for its pinned epoch -- no torn reads, no reads of unpublished state,
pinned views stable while the writer advances.

The deterministic half checks the epoch machinery directly (publication
watermark, preservation across out-of-order cascades / splices /
retirement, durable serving) and the :class:`ParallelExecutor`
differential guarantee: thread counts 1..8 produce bit-identical output
to a serial ``query_many``, and snapshot serving never perturbs the
metered golden costs.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro.concurrent import ParallelExecutor, SnapshotCube, run_stress
from repro.core.errors import AgedOutError, DomainError
from repro.ecube import compiled
from repro.core.types import Box
from repro.durability.recovery import DurableCube
from repro.ecube.buffered import BufferedEvolvingDataCube
from repro.ecube.ecube import EvolvingDataCube
from repro.metrics import CostCounter

from .conftest import brute_box_sum, random_box

BACKENDS = ("dense", "paged", "sparse")


def _filled_cube(rng, shape=(6, 6), num_times=24, updates=120, counter=None):
    cube = EvolvingDataCube(shape, num_times=num_times, counter=counter)
    times = np.sort(rng.integers(0, num_times, size=updates))
    points = np.column_stack(
        [times] + [rng.integers(0, n, size=updates) for n in shape]
    ).astype(np.int64)
    deltas = rng.integers(-3, 9, size=updates).astype(np.int64)
    cube.update_many(points, deltas)
    dense = np.zeros((num_times,) + shape, dtype=np.int64)
    np.add.at(dense, tuple(points.T), deltas)
    return cube, dense


class TestStressAllBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("buffered", [False, True])
    def test_racing_readers_match_oracle(self, backend, buffered):
        result = run_stress(
            backend=backend,
            buffered=buffered,
            readers=3,
            writes=60,
            seed=11,
        )
        assert result.reads > 0
        assert result.validated_answers > 0
        assert result.ok, "\n".join(result.errors)

    def test_repeated_runs_stay_clean(self):
        # different seeds shuffle the interleavings; a scheduling-
        # dependent bug shows up as a rare oracle mismatch
        for seed in range(5):
            result = run_stress(
                backend="dense", buffered=True, readers=4, writes=40, seed=seed
            )
            assert result.ok, f"seed {seed}:\n" + "\n".join(result.errors)


class TestEpochSemantics:
    def test_pinned_view_is_immutable_under_appends(self, rng):
        cube, dense = _filled_cube(rng)
        snap = SnapshotCube(cube)
        boxes = [random_box(rng, dense.shape) for _ in range(30)]
        with snap.pin() as view:
            before = view.query_many(boxes)
            assert before == [brute_box_sum(dense, box) for box in boxes]
            snap.update((23, 0, 0), 1000)
            snap.update_many(
                np.array([[23, 1, 1], [23, 2, 2]], dtype=np.int64),
                np.array([50, 60], dtype=np.int64),
            )
            assert view.query_many(boxes) == before
        # a fresh pin sees the new writes
        dense[23, 0, 0] += 1000
        dense[23, 1, 1] += 50
        dense[23, 2, 2] += 60
        assert snap.query_many(boxes) == [
            brute_box_sum(dense, box) for box in boxes
        ]

    def test_pinned_view_survives_out_of_order_cascade(self, rng):
        # even occurring times only, so every odd time is never-occurring
        cube = EvolvingDataCube((6, 6), num_times=24)
        times = 2 * np.sort(rng.integers(0, 12, size=120))
        points = np.column_stack(
            [times, rng.integers(0, 6, 120), rng.integers(0, 6, 120)]
        ).astype(np.int64)
        deltas = rng.integers(-3, 9, size=120).astype(np.int64)
        cube.update_many(points, deltas)
        dense = np.zeros((24, 6, 6), dtype=np.int64)
        np.add.at(dense, tuple(points.T), deltas)
        snap = SnapshotCube(cube)
        boxes = [random_box(rng, dense.shape) for _ in range(30)]
        view = snap.pin()
        before = view.query_many(boxes)
        # corrections at occurring and never-occurring historic times:
        # the cascade rewrites historic slices and the splice shifts
        # directory indices; the pinned epoch must not notice
        snap.apply_out_of_order((4, 2, 2), 17)
        never = 3  # odd => spliced in as a new instance
        snap.apply_out_of_order((never, 1, 3), -4)
        assert view.query_many(boxes) == before
        view.release()
        dense[4, 2, 2] += 17
        dense[never, 1, 3] += -4
        assert snap.query_many(boxes) == [
            brute_box_sum(dense, box) for box in boxes
        ]

    def test_pinned_view_survives_retirement(self, rng):
        cube, dense = _filled_cube(rng)
        snap = SnapshotCube(cube)
        view = snap.pin()
        old_box = Box((0, 0, 0), (5, 5, 5))
        before = view.query(old_box)
        boundary = int(cube.occurring_times()[3])
        snap.retire_before(boundary)
        # the pinned epoch was preserved before the slices were freed
        assert view.query(old_box) == before
        view.release()
        # a fresh epoch answers open prefixes but ages out the detail
        with snap.pin() as fresh:
            with pytest.raises(AgedOutError):
                fresh.query(Box((1, 0, 0), (2, 5, 5)))

    def test_buffer_only_publish_reuses_frozen_cache(self, rng):
        front = BufferedEvolvingDataCube((4, 4), num_times=16)
        snap = SnapshotCube(front)
        snap.update((5, 1, 1), 3)
        with snap.pin() as view_a:
            epoch_a = view_a.epoch
            # a historic update lands in G_d without touching the kernel:
            # the new epoch shares the frozen cache (copy-on-publish)
            snap.update((2, 0, 0), 7)
            with snap.pin() as view_b:
                epoch_b = view_b.epoch
                assert epoch_b.sequence > epoch_a.sequence
                assert epoch_b.cache_values is epoch_a.cache_values
                assert epoch_b.overlays is epoch_a.overlays
                # answers still differ through the frozen G_d columns
                box = Box((0, 0, 0), (15, 3, 3))
                assert view_b.query(box) == view_a.query(box) + 7
            # an in-order update advances the kernel: fresh freeze
            snap.update((6, 2, 2), 1)
            with snap.pin() as view_c:
                assert view_c.epoch.cache_values is not epoch_a.cache_values

    def test_drain_publishes_once_and_preserves_pins(self, rng):
        front = BufferedEvolvingDataCube((4, 4), num_times=16)
        snap = SnapshotCube(front)
        for t in (0, 3, 8):
            snap.update((t, 1, 2), 5)
        snap.update((1, 0, 0), 9)  # historic -> buffered
        snap.update((2, 3, 3), 4)  # historic -> buffered
        view = snap.pin()
        box = Box((0, 0, 0), (15, 3, 3))
        before = view.query(box)
        sequence_before = snap.current_sequence()
        snap.drain()
        assert front.buffered_updates == 0
        # one epoch for the whole drain, answers unchanged by it
        assert snap.current_sequence() == sequence_before + 1
        assert view.query(box) == before
        assert snap.query(box) == before
        view.release()

    def test_double_attach_rejected(self):
        cube = EvolvingDataCube((4, 4), num_times=8)
        snap = SnapshotCube(cube)
        with pytest.raises(DomainError, match="already has a snapshot front"):
            SnapshotCube(cube)
        snap.close()
        reattached = SnapshotCube(cube)  # close() releases the slot
        reattached.close()

    def test_unsupported_target_rejected(self):
        with pytest.raises(DomainError, match="cannot serve snapshots"):
            SnapshotCube(object())


class TestParallelExecutorDifferential:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    def test_bit_identical_to_serial(self, rng, threads):
        counter = CostCounter()
        cube, dense = _filled_cube(rng, updates=200, counter=counter)
        boxes = [random_box(rng, dense.shape) for _ in range(150)]
        serial = cube.query_many(boxes)
        assert serial == [brute_box_sum(dense, box) for box in boxes]
        golden = counter.snapshot()
        snap = SnapshotCube(cube)
        with ParallelExecutor(snap, threads=threads) as executor:
            parallel = executor.query_many(boxes)
            assert parallel == serial
            # engine/term-table reuse across batches stays correct
            assert executor.query_many(boxes[:37]) == serial[:37]
            assert executor.query(boxes[0]) == serial[0]
        # snapshot serving is pure: the metered golden costs of the
        # underlying cube are untouched by any number of reader threads
        after = counter.snapshot()
        assert after.cell_accesses == golden.cell_accesses
        assert after.page_accesses == golden.page_accesses
        snap.close()

    def test_default_is_single_thread_and_multi_thread_warns(self, rng):
        cube, dense = _filled_cube(rng, updates=40)
        snap = SnapshotCube(cube)
        with ParallelExecutor(snap) as executor:  # no warning expected
            assert executor.threads == 1
            boxes = [random_box(rng, dense.shape) for _ in range(20)]
            assert executor.query_many(boxes) == cube.query_many(boxes)
        if compiled.NUMBA_ACTIVE:
            # nogil compiled kernels: multi-thread serving is genuine
            # parallelism, so asking for threads must NOT warn
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                executor = ParallelExecutor(snap, threads=2)
        else:
            with pytest.warns(RuntimeWarning, match="sharding"):
                executor = ParallelExecutor(snap, threads=2)
        executor.close()
        snap.close()

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_concurrent_batches_share_one_executor(self, rng):
        cube, dense = _filled_cube(rng)
        snap = SnapshotCube(cube)
        boxes = [random_box(rng, dense.shape) for _ in range(60)]
        expected = [brute_box_sum(dense, box) for box in boxes]
        errors: list[str] = []
        with ParallelExecutor(snap, threads=4) as executor:
            barrier = threading.Barrier(3)

            def hammer():
                barrier.wait()
                for _ in range(5):
                    if executor.query_many(boxes) != expected:
                        errors.append("batch mismatch")

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_invalid_thread_count_rejected(self, rng):
        cube, _ = _filled_cube(rng, updates=10)
        snap = SnapshotCube(cube)
        with pytest.raises(DomainError):
            ParallelExecutor(snap, threads=0)
        with pytest.raises(DomainError):
            ParallelExecutor(snap, threads=2, chunk_size=0)


class TestDurableServing:
    def test_logged_writes_checkpoints_and_recovery(self, tmp_path, rng):
        durable = DurableCube(
            (4, 4), tmp_path / "cube", buffered=True, fsync="off", num_times=16
        )
        snap = durable.serve()
        times = np.sort(rng.integers(0, 16, size=50))
        points = np.column_stack(
            [times, rng.integers(0, 4, 50), rng.integers(0, 4, 50)]
        ).astype(np.int64)
        deltas = rng.integers(-2, 6, size=50).astype(np.int64)
        snap.update_many(points, deltas)
        snap.update((0, 1, 1), 13)  # historic -> logged, buffered
        box = Box((0, 0, 0), (15, 3, 3))
        view = snap.pin()
        pinned_answer = view.query(box)
        manifest = snap.checkpoint()
        # the checkpoint records the epoch it covers
        assert manifest.covered_epoch == snap.current_sequence()
        snap.update((15, 2, 2), 21)
        assert view.query(box) == pinned_answer
        live_answer = snap.query(box)
        assert live_answer == pinned_answer + 21
        view.release()
        durable.close()
        snap.close()
        recovered = DurableCube.recover(tmp_path / "cube")
        try:
            assert recovered.query(box) == live_answer
            assert recovered._manifest.covered_epoch == manifest.covered_epoch
        finally:
            recovered.close()

    def test_readers_race_logged_writer(self, tmp_path):
        durable = DurableCube(
            (4, 4), tmp_path / "cube", buffered=True, fsync="off", num_times=32
        )
        snap = durable.serve()
        box = Box((0, 0, 0), (31, 3, 3))
        stop = threading.Event()
        failures: list[str] = []

        def reader():
            while not stop.is_set():
                with snap.pin() as view:
                    first = view.query(box)
                    if view.query(box) != first:
                        failures.append("torn read inside one view")
                        return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        rng = np.random.default_rng(5)
        total = 0
        for t in range(32):
            batch = np.column_stack(
                [
                    np.full(3, t),
                    rng.integers(0, 4, 3),
                    rng.integers(0, 4, 3),
                ]
            ).astype(np.int64)
            deltas = rng.integers(1, 5, size=3).astype(np.int64)
            snap.update_many(batch, deltas)
            total += int(deltas.sum())
            if t % 10 == 5:
                snap.checkpoint()
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures
        assert snap.query(box) == total
        durable.close()
        snap.close()
