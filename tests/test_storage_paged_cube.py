"""Tests for the disk-resident pre-aggregated array."""

from __future__ import annotations

import pytest

from repro.core.types import Box
from repro.preagg.cube import PreAggregatedArray
from repro.storage.buffer import LRUBufferPool
from repro.storage.paged_cube import PagedPreAggregatedArray

from tests.conftest import brute_box_sum, random_box


@pytest.fixture
def paged(rng):
    raw = rng.integers(0, 10, size=(16, 32))
    array = PreAggregatedArray(raw.shape, ["PS", "DDC"], values=raw)
    return (
        PagedPreAggregatedArray(array, page_size=64, cell_size=4),
        raw,
    )


class TestQueries:
    def test_results_exact(self, paged, rng):
        disk, raw = paged
        for _ in range(30):
            box = random_box(rng, raw.shape)
            assert disk.range_sum(box) == brute_box_sum(raw, box)

    def test_page_cost_bounded_by_cells(self, paged, rng):
        disk, raw = paged
        for _ in range(20):
            box = random_box(rng, raw.shape)
            terms = disk.array.range_term_cells(box)
            assert disk.query_page_cost(box) <= max(1, len(terms))

    def test_sequential_cells_share_pages(self, paged):
        disk, _raw = paged
        # PS terms on the last axis are 2 cells in the same row: with 16
        # cells per page they often share one page
        cost = disk.query_page_cost(Box((3, 4), (3, 8)))
        assert cost <= 2

    def test_counter_charged(self, paged):
        disk, _raw = paged
        disk.range_sum(Box((0, 0), (15, 31)))
        assert disk.counter.page_reads >= 1
        assert disk.last_op_page_accesses == disk.counter.page_reads


class TestUpdates:
    def test_update_keeps_answers_exact(self, paged, rng):
        disk, raw = paged
        for _ in range(15):
            point = (int(rng.integers(0, 16)), int(rng.integers(0, 32)))
            delta = int(rng.integers(-5, 9))
            disk.update(point, delta)
            raw[point] += delta
        for _ in range(15):
            box = random_box(rng, raw.shape)
            assert disk.range_sum(box) == brute_box_sum(raw, box)

    def test_update_charges_write_pages(self, paged):
        disk, _raw = paged
        before = disk.counter.page_writes
        disk.update((0, 0), 5)
        assert disk.counter.page_writes > before


class TestBufferPool:
    def test_warm_pool_reduces_io(self, rng):
        raw = rng.integers(0, 10, size=(16, 32))
        array = PreAggregatedArray(raw.shape, ["PS", "DDC"], values=raw)
        pool = LRUBufferPool(capacity=1024)
        disk = PagedPreAggregatedArray(
            array, page_size=64, cell_size=4, buffer_pool=pool
        )
        box = Box((2, 3), (13, 29))
        first = disk.range_sum(box)
        cold = disk.last_op_page_accesses
        assert disk.range_sum(box) == first
        assert disk.last_op_page_accesses == 0  # fully cached
        assert cold > 0
