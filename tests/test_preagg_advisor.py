"""Tests for the pre-aggregation technique advisor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import DomainError
from repro.metrics import CostCounter
from repro.preagg.advisor import (
    DEFAULT_CANDIDATES,
    profile_technique,
    recommend_techniques,
)
from repro.preagg.cube import PreAggregatedArray
from repro.workloads.queries import uni_queries


class TestProfiles:
    def test_ps_profile(self):
        profile = profile_technique("PS", 256)
        assert profile.avg_query_terms <= 2.0
        assert profile.avg_update_terms > 50  # O(N) updates

    def test_identity_profile(self):
        profile = profile_technique("A", 256)
        assert profile.avg_update_terms == 1.0
        assert profile.avg_query_terms > 10  # O(N) queries

    def test_ddc_profile_logarithmic_both_ways(self):
        profile = profile_technique("DDC", 256)
        assert profile.avg_query_terms <= 2 * 9
        assert profile.avg_update_terms <= 9 + 1


class TestRecommendations:
    def test_query_only_picks_ps(self):
        rec = recommend_techniques((64, 64), query_weight=1.0)
        assert rec.techniques == ("PS", "PS")

    def test_update_only_picks_raw_array(self):
        rec = recommend_techniques((64, 64), query_weight=0.0)
        assert rec.techniques == ("A", "A")

    def test_balanced_picks_bounded_both_ways(self):
        rec = recommend_techniques((256, 256), query_weight=0.5)
        for name in rec.techniques:
            assert name in ("DDC", "RPS", "LPS")

    def test_tt_dimension_pinned_to_ps(self):
        rec = recommend_techniques(
            (64, 64), query_weight=0.0, tt_dimension=0
        )
        assert rec.techniques[0] == "PS"
        assert rec.techniques[1] == "A"

    def test_validation(self):
        with pytest.raises(DomainError):
            recommend_techniques((), query_weight=0.5)
        with pytest.raises(DomainError):
            recommend_techniques((4,), query_weight=1.5)
        with pytest.raises(DomainError):
            recommend_techniques((4,), tt_dimension=3)

    def test_monotone_in_weight(self):
        # more query-heavy workloads never get worse query cost
        previous = None
        for weight in (0.0, 0.25, 0.5, 0.75, 1.0):
            rec = recommend_techniques((128, 128), query_weight=weight)
            if previous is not None:
                assert rec.expected_query_cost <= previous.expected_query_cost + 1e-9
            previous = rec


class TestPredictionsAgainstMeasurement:
    def test_predicted_query_cost_tracks_measured(self):
        shape = (64, 64)
        rec = recommend_techniques(shape, query_weight=0.8)
        rng = np.random.default_rng(140)
        raw = rng.integers(0, 10, size=shape)
        counter = CostCounter()
        array = PreAggregatedArray(
            shape, list(rec.techniques), values=raw, counter=counter
        )
        queries = uni_queries(shape, 300, seed=141)
        counter.reset()
        for box in queries:
            array.range_sum(box)
        measured = counter.cell_reads / len(queries)
        # the profile samples general ranges uniformly; the uni workload
        # differs (prefix/point/full mixes), so allow a loose factor
        assert measured <= 4 * rec.expected_query_cost + 8
        assert rec.expected_query_cost <= 6 * measured + 8

    def test_candidates_cover_spectrum(self):
        assert set(DEFAULT_CANDIDATES) == {"A", "PS", "RPS", "LPS", "DDC"}
