"""Tests for the R-tree (dynamic inserts and STR bulk loading)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError
from repro.core.types import Box
from repro.trees.rtree import RTree

from tests.conftest import random_box


def brute_sum(points, values, box: Box) -> int:
    return sum(v for p, v in zip(points, values) if box.contains(p))


class TestDynamicInserts:
    def test_empty_tree(self):
        tree = RTree(2)
        assert len(tree) == 0
        assert tree.range_sum(Box((0, 0), (10, 10))) == 0

    def test_arity_checked(self):
        tree = RTree(2)
        with pytest.raises(DomainError):
            tree.insert((1, 2, 3), 1)
        with pytest.raises(DomainError):
            tree.range_sum(Box((0,), (1,)))

    def test_invalid_parameters(self):
        with pytest.raises(DomainError):
            RTree(0)
        with pytest.raises(DomainError):
            RTree(2, leaf_capacity=1)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_matches_brute_force(self, data):
        ndim = data.draw(st.integers(1, 4))
        count = data.draw(st.integers(1, 150))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        points = [tuple(int(c) for c in rng.integers(0, 50, size=ndim)) for _ in range(count)]
        values = [int(v) for v in rng.integers(-10, 10, size=count)]
        tree = RTree(ndim, leaf_capacity=4, fanout=4)
        for point, value in zip(points, values):
            tree.insert(point, value)
        assert len(tree) == count
        shape = tuple([50] * ndim)
        for _ in range(8):
            box = random_box(rng, shape)
            assert tree.range_sum(box) == brute_sum(points, values, box)

    def test_duplicate_points_accumulate(self):
        tree = RTree(2, leaf_capacity=4, fanout=4)
        for _ in range(20):
            tree.insert((3, 3), 2)
        assert tree.range_sum(Box((3, 3), (3, 3))) == 40

    def test_total(self):
        tree = RTree(2)
        tree.insert((0, 0), 5)
        tree.insert((9, 9), 7)
        assert tree.total() == 12


class TestBulkLoad:
    def test_rejects_empty(self):
        with pytest.raises(DomainError):
            RTree.bulk_load([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(DomainError):
            RTree.bulk_load([(1, 2)], [1, 2])

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_matches_brute_force(self, data):
        ndim = data.draw(st.integers(1, 4))
        count = data.draw(st.integers(1, 400))
        seed = data.draw(st.integers(0, 2**31))
        rng = np.random.default_rng(seed)
        points = [tuple(int(c) for c in rng.integers(0, 60, size=ndim)) for _ in range(count)]
        values = [int(v) for v in rng.integers(0, 10, size=count)]
        tree = RTree.bulk_load(points, values, leaf_capacity=8, fanout=8)
        shape = tuple([60] * ndim)
        for _ in range(8):
            box = random_box(rng, shape)
            assert tree.range_sum(box) == brute_sum(points, values, box)

    def test_leaves_packed(self):
        rng = np.random.default_rng(1)
        points = [tuple(int(c) for c in rng.integers(0, 100, size=2)) for _ in range(1000)]
        tree = RTree.bulk_load(points, [1] * 1000, leaf_capacity=16, fanout=8)
        # fully packed: ceil(1000/16) = 63 leaves
        assert tree.leaf_count() == 63
        assert len(tree) == 1000

    def test_leaf_access_counting(self):
        rng = np.random.default_rng(2)
        points = [tuple(int(c) for c in rng.integers(0, 100, size=2)) for _ in range(500)]
        tree = RTree.bulk_load(points, [1] * 500, leaf_capacity=8, fanout=8)
        tree.reset_counters()
        tree.range_sum(Box((0, 0), (99, 99)))
        assert tree.leaf_accesses == tree.leaf_count()  # full-domain touches all
        tree.reset_counters()
        tree.range_sum(Box((0, 0), (5, 5)))
        assert tree.leaf_accesses < tree.leaf_count()  # selective touches fewer


class TestAggregateVariant:
    def test_contained_subtrees_short_circuit(self):
        rng = np.random.default_rng(3)
        points = [tuple(int(c) for c in rng.integers(0, 100, size=2)) for _ in range(800)]
        values = [int(v) for v in rng.integers(0, 5, size=800)]
        plain = RTree.bulk_load(points, values, leaf_capacity=8, fanout=8)
        annotated = RTree.bulk_load(
            points, values, leaf_capacity=8, fanout=8, with_aggregates=True
        )
        box = Box((0, 0), (99, 99))
        assert plain.range_sum(box) == annotated.range_sum(box)
        assert annotated.leaf_accesses < plain.leaf_accesses

    def test_results_identical_on_random_boxes(self):
        rng = np.random.default_rng(4)
        points = [tuple(int(c) for c in rng.integers(0, 64, size=3)) for _ in range(600)]
        values = [int(v) for v in rng.integers(-5, 6, size=600)]
        plain = RTree.bulk_load(points, values, leaf_capacity=8, fanout=8)
        annotated = RTree.bulk_load(
            points, values, leaf_capacity=8, fanout=8, with_aggregates=True
        )
        for _ in range(20):
            box = random_box(rng, (64, 64, 64))
            assert plain.range_sum(box) == annotated.range_sum(box)


class TestDelete:
    def test_delete_exact_entry(self):
        tree = RTree(2)
        tree.insert((3, 4), 5)
        tree.insert((7, 1), 2)
        assert tree.delete((3, 4), 5)
        assert len(tree) == 1
        assert tree.range_sum(Box((0, 0), (9, 9))) == 2
        assert tree.range_sum(Box((3, 4), (3, 4))) == 0

    def test_delete_missing_returns_false(self):
        tree = RTree(2)
        tree.insert((3, 4), 5)
        assert not tree.delete((3, 4), 6)  # value mismatch
        assert not tree.delete((8, 8), 5)  # point mismatch
        assert len(tree) == 1

    def test_delete_one_of_duplicates(self):
        tree = RTree(2)
        tree.insert((3, 4), 5)
        tree.insert((3, 4), 5)
        assert tree.delete((3, 4), 5)
        assert len(tree) == 1
        assert tree.range_sum(Box((3, 4), (3, 4))) == 5

    def test_delete_to_empty_and_reuse(self):
        tree = RTree(2)
        for t in range(20):
            tree.insert((t, t), 1)
        for t in range(20):
            assert tree.delete((t, t), 1)
        assert len(tree) == 0
        assert tree.range_sum(Box((0, 0), (19, 19))) == 0
        tree.insert((5, 5), 9)  # the emptied tree keeps working
        assert tree.range_sum(Box((0, 0), (19, 19))) == 9

    def test_delete_counts_node_accesses(self):
        tree = RTree(2)
        for t in range(50):
            tree.insert((t, t % 7), 1)
        before = tree.node_accesses
        assert tree.delete((10, 3), 1)
        assert tree.node_accesses > before

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_interleaved_inserts_and_deletes(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        tree = RTree(2, leaf_capacity=4, fanout=4)
        live: list[tuple[tuple[int, int], int]] = []
        for _ in range(data.draw(st.integers(20, 120))):
            if live and data.draw(st.booleans()):
                point, value = live.pop(
                    data.draw(st.integers(0, len(live) - 1))
                )
                assert tree.delete(point, value)
            else:
                point = tuple(int(c) for c in rng.integers(0, 30, size=2))
                value = int(rng.integers(-5, 6))
                tree.insert(point, value)
                live.append((point, value))
            assert len(tree) == len(live)
            box = random_box(rng, (30, 30))
            assert tree.range_sum(box) == brute_sum(
                [p for p, _ in live], [v for _, v in live], box
            )

    def test_delete_from_bulk_loaded_aggregate_tree(self):
        rng = np.random.default_rng(5)
        points = [
            tuple(int(c) for c in rng.integers(0, 40, size=2))
            for _ in range(300)
        ]
        values = [int(v) for v in rng.integers(1, 6, size=300)]
        tree = RTree.bulk_load(
            points, values, leaf_capacity=8, fanout=8, with_aggregates=True
        )
        removed = set()
        for i in range(0, 300, 3):
            assert tree.delete(points[i], values[i])
            removed.add(i)
        kept_points = [p for i, p in enumerate(points) if i not in removed]
        kept_values = [v for i, v in enumerate(values) if i not in removed]
        for _ in range(20):
            box = random_box(rng, (40, 40))
            assert tree.range_sum(box) == brute_sum(kept_points, kept_values, box)
