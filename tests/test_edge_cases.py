"""Edge-case robustness across modules.

Degenerate domains (size-1 dimensions), extreme values, single-point
data, and boundary query shapes -- the corners where off-by-ones live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import AppendOnlyAggregator
from repro.core.types import Box, TimeInterval
from repro.ecube.disk import DiskEvolvingDataCube
from repro.ecube.ecube import EvolvingDataCube
from repro.preagg.cube import PreAggregatedArray
from repro.trees.mvbtree import MultiversionBTree
from repro.trees.rtree import RTree
from repro.trees.zorder import ZOrderSliceStructure


class TestDegenerateDomains:
    @pytest.mark.parametrize("tech", ["A", "PS", "RPS", "LPS", "DDC"])
    def test_size_one_dimension(self, tech):
        arr = PreAggregatedArray((1, 5), [tech, "DDC"], values=np.arange(5).reshape(1, 5))
        assert arr.range_sum(Box((0, 0), (0, 4))) == 10
        arr.update((0, 2), 3)
        assert arr.range_sum(Box((0, 2), (0, 2))) == 5

    def test_single_cell_cube(self):
        cube = EvolvingDataCube((1,), num_times=4)
        cube.update((0, 0), 7)
        cube.update((3, 0), 5)
        assert cube.query(Box((0, 0), (3, 0))) == 12
        assert cube.query(Box((1, 0), (2, 0))) == 0

    def test_one_time_slice_only(self):
        cube = EvolvingDataCube((4, 4))
        for _ in range(5):
            cube.update((9, 1, 1), 2)
        assert cube.query(Box((9, 0, 0), (9, 3, 3))) == 10
        assert cube.query(Box((0, 0, 0), (8, 3, 3))) == 0
        assert cube.incomplete_historic_instances() == 0

    def test_zorder_single_cell_domain(self):
        structure = ZOrderSliceStructure((1, 1))
        structure.update((0, 0), 42)
        assert structure.range_sum((0, 0), (0, 0)) == 42


class TestExtremeValues:
    def test_large_measures(self):
        cube = EvolvingDataCube((4,))
        big = 2**40
        cube.update((0, 1), big)
        cube.update((1, 1), -big)
        assert cube.query(Box((0, 0), (0, 3))) == big
        assert cube.query(Box((0, 0), (1, 3))) == 0

    def test_negative_and_cancelling_deltas(self):
        cube = DiskEvolvingDataCube((4, 4), page_size=64)
        cube.update((0, 1, 1), 5)
        cube.update((0, 1, 1), -5)
        cube.update((2, 1, 1), 3)
        assert cube.query(Box((0, 0, 0), (0, 3, 3))) == 0
        assert cube.query(Box((0, 0, 0), (2, 3, 3))) == 3

    def test_mvbt_cancelling_measures_consolidate(self):
        tree = MultiversionBTree(capacity=8)
        for version in range(64):
            tree.update(5, 1, version=version)
            tree.update(5, -1, version=version)
        assert tree.get(5) == 0
        assert list(tree.items_at(63)) == []

    def test_sparse_time_values(self):
        cube = EvolvingDataCube((2,))
        cube.update((1_000_000, 0), 1)
        cube.update((2_000_000, 1), 2)
        assert cube.query(Box((0, 0), (1_500_000, 1))) == 1
        assert cube.query(Box((1_000_001, 0), (2_000_000, 1))) == 2


class TestBoundaryQueries:
    def test_point_query_every_corner(self):
        rng = np.random.default_rng(170)
        dense = rng.integers(0, 9, size=(6, 5, 4))
        cube = EvolvingDataCube.from_dense(dense)
        for corner in [(0, 0, 0), (5, 4, 3), (0, 4, 0), (5, 0, 3)]:
            assert cube.query(Box(corner, corner)) == dense[corner]

    def test_query_entirely_before_history(self):
        agg = AppendOnlyAggregator(ndim=2)
        agg.update((100, 5), 7)
        assert agg.query(Box((0, 0), (99, 9))) == 0

    def test_query_entirely_after_history(self):
        agg = AppendOnlyAggregator(ndim=2)
        agg.update((5, 5), 7)
        assert agg.query(Box((6, 0), (1000, 9))) == 0

    def test_full_domain_box_clips(self):
        cube = EvolvingDataCube((4, 4), num_times=8)
        cube.update((2, 3, 3), 9)
        huge = Box((0, 0, 0), (10**9, 10**9, 10**9))
        assert cube.query(huge) == 9


class TestStructuralEdges:
    def test_rtree_all_identical_points(self):
        tree = RTree(2, leaf_capacity=4, fanout=4)
        for _ in range(50):
            tree.insert((7, 7), 1)
        assert tree.range_sum(Box((7, 7), (7, 7))) == 50
        assert tree.range_sum(Box((0, 0), (6, 6))) == 0

    def test_rtree_collinear_points(self):
        points = [(i, 0) for i in range(100)]
        tree = RTree.bulk_load(points, [1] * 100, leaf_capacity=8)
        assert tree.range_sum(Box((25, 0), (74, 0))) == 50

    def test_interval_zero_length(self):
        from repro.core.extent import IntervalAggregator

        agg = IntervalAggregator()
        agg.insert(TimeInterval(5, 5), key=1)
        assert agg.intersecting(TimeInterval(5, 5), 0, 9) == 1
        assert agg.intersecting(TimeInterval(6, 9), 0, 9) == 0
        assert agg.containment(TimeInterval(5, 5)) == 1

    def test_mvbt_single_key_heavy(self):
        tree = MultiversionBTree(capacity=8)
        for version in range(200):
            tree.update(42, 1, version=version)
        for probe in (0, 99, 199):
            assert tree.range_sum(42, 42, version=probe) == probe + 1
        tree.check_invariants()

    def test_ecube_every_cell_touched(self):
        # dense stream: every cell of every slice updated
        cube = EvolvingDataCube((3, 3), num_times=4)
        dense = np.zeros((4, 3, 3), dtype=np.int64)
        value = 1
        for t in range(4):
            for x in range(3):
                for y in range(3):
                    cube.update((t, x, y), value)
                    dense[t, x, y] = value
                    value += 1
        for t_low in range(4):
            for t_up in range(t_low, 4):
                box = Box((t_low, 0, 0), (t_up, 2, 2))
                assert cube.query(box) == dense[t_low : t_up + 1].sum()
