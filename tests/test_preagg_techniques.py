"""Unit and property tests for the one-dimensional techniques."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError
from repro.preagg.base import evaluate_terms, technique_by_name
from repro.preagg.ddc import DDCTechnique, lowbit
from repro.preagg.identity import IdentityTechnique
from repro.preagg.prefix_sum import PrefixSumTechnique
from repro.preagg.local_prefix import LocalPrefixSumTechnique
from repro.preagg.relative_prefix import RelativePrefixSumTechnique

TECHNIQUE_CLASSES = [
    IdentityTechnique,
    PrefixSumTechnique,
    DDCTechnique,
    RelativePrefixSumTechnique,
    LocalPrefixSumTechnique,
]


def _arrays(min_size=1, max_size=64):
    return st.lists(
        st.integers(min_value=-100, max_value=100),
        min_size=min_size,
        max_size=max_size,
    )


class TestLowbit:
    def test_powers_of_two(self):
        for k in range(10):
            assert lowbit(1 << k) == 1 << k

    def test_odd_numbers(self):
        for j in (1, 3, 5, 99, 1001):
            assert lowbit(j) == 1

    def test_general(self):
        assert lowbit(12) == 4
        assert lowbit(40) == 8


class TestPaperExample:
    """Figure 4: the all-ones array of size 8 and q(2, 6)."""

    def test_ddc_layout_matches_figure4(self):
        technique = DDCTechnique(8)
        aggregated = technique.aggregate(np.ones(8, dtype=np.int64))
        assert aggregated.tolist() == [1, 2, 1, 4, 1, 2, 1, 8]

    def test_query_2_6_touches_the_figure4_cells(self):
        technique = DDCTechnique(8)
        terms = technique.range_terms(2, 6)
        # q(2,6) = (D[3] + D[5] + D[6]) - D[1]
        assert sorted(terms) == [(1, -1), (3, 1), (5, 1), (6, 1)]

    def test_prefix_6_descends_d6_d5_d3(self):
        technique = DDCTechnique(8)
        assert sorted(technique.prefix_terms(6)) == [(3, 1), (5, 1), (6, 1)]

    def test_prefix_sum_figure3(self):
        technique = PrefixSumTechnique(8)
        raw = np.array([3, 1, 4, 1, 5, 9, 2, 6])
        assert technique.aggregate(raw).tolist() == [3, 4, 8, 9, 14, 23, 25, 31]


@pytest.mark.parametrize("cls", TECHNIQUE_CLASSES)
class TestTechniqueContract:
    def test_rejects_nonpositive_size(self, cls):
        with pytest.raises(DomainError):
            cls(0)

    def test_prefix_of_minus_one_is_empty_or_noop(self, cls):
        technique = cls(8)
        assert evaluate_terms([1] * 8, technique.prefix_terms(-1)) == 0

    def test_prefix_bound_checked(self, cls):
        technique = cls(8)
        with pytest.raises(DomainError):
            technique.prefix_terms(8)
        with pytest.raises(DomainError):
            technique.prefix_terms(-2)

    def test_update_bound_checked(self, cls):
        technique = cls(8)
        with pytest.raises(DomainError):
            technique.update_terms(8)
        with pytest.raises(DomainError):
            technique.update_terms(-1)

    def test_inverted_range_rejected(self, cls):
        technique = cls(8)
        with pytest.raises(DomainError):
            technique.range_terms(5, 3)

    def test_aggregate_roundtrip(self, cls):
        technique = cls(13)
        raw = np.arange(13, dtype=np.int64) * 3 - 7
        assert (technique.deaggregate(technique.aggregate(raw)) == raw).all()

    def test_aggregate_does_not_mutate_input(self, cls):
        technique = cls(8)
        raw = np.ones(8, dtype=np.int64)
        technique.aggregate(raw)
        assert raw.tolist() == [1] * 8

    @settings(max_examples=60, deadline=None)
    @given(values=_arrays())
    def test_prefix_terms_evaluate_to_prefix_sums(self, cls, values):
        technique = cls(len(values))
        aggregated = technique.aggregate(np.array(values, dtype=np.int64))
        for k in range(len(values)):
            expected = sum(values[: k + 1])
            assert evaluate_terms(aggregated, technique.prefix_terms(k)) == expected

    @settings(max_examples=60, deadline=None)
    @given(values=_arrays(min_size=2), data=st.data())
    def test_range_terms_evaluate_to_range_sums(self, cls, values, data):
        technique = cls(len(values))
        aggregated = technique.aggregate(np.array(values, dtype=np.int64))
        low = data.draw(st.integers(0, len(values) - 1))
        up = data.draw(st.integers(low, len(values) - 1))
        expected = sum(values[low : up + 1])
        assert evaluate_terms(aggregated, technique.range_terms(low, up)) == expected

    @settings(max_examples=60, deadline=None)
    @given(values=_arrays(), data=st.data())
    def test_update_terms_keep_queries_consistent(self, cls, values, data):
        technique = cls(len(values))
        aggregated = np.array(
            technique.aggregate(np.array(values, dtype=np.int64))
        )
        index = data.draw(st.integers(0, len(values) - 1))
        delta = data.draw(st.integers(-50, 50))
        for cell, coeff in technique.update_terms(index):
            aggregated[cell] += coeff * delta
        raw = list(values)
        raw[index] += delta
        for k in range(len(values)):
            assert evaluate_terms(aggregated, technique.prefix_terms(k)) == sum(
                raw[: k + 1]
            )


class TestCostBounds:
    """The complexity guarantees of Section 3.1."""

    @pytest.mark.parametrize("size", [1, 2, 7, 8, 9, 64, 100, 255, 256])
    def test_ddc_prefix_cost_logarithmic(self, size):
        technique = DDCTechnique(size)
        bound = size.bit_length()
        for k in range(-1, size):
            assert len(technique.prefix_terms(k)) <= bound

    @pytest.mark.parametrize("size", [1, 2, 7, 8, 9, 64, 100, 255, 256])
    def test_ddc_update_cost_logarithmic(self, size):
        technique = DDCTechnique(size)
        bound = size.bit_length() + 1
        for i in range(size):
            assert len(technique.update_terms(i)) <= bound

    def test_ddc_direct_range_never_worse_than_prefix_difference(self):
        technique = DDCTechnique(64)
        for low in range(0, 64, 7):
            for up in range(low, 64, 5):
                direct = len(technique.range_terms(low, up))
                via_prefix = len(technique.prefix_terms(up)) + len(
                    technique.prefix_terms(low - 1)
                )
                assert direct <= via_prefix

    def test_ps_query_cost_constant(self):
        technique = PrefixSumTechnique(1000)
        assert len(technique.range_terms(123, 456)) == 2
        assert len(technique.range_terms(0, 456)) == 1
        assert len(technique.prefix_terms(999)) == 1

    def test_ps_update_cost_linear_tail(self):
        technique = PrefixSumTechnique(100)
        assert len(technique.update_terms(0)) == 100
        assert len(technique.update_terms(99)) == 1

    def test_identity_query_cost_linear(self):
        technique = IdentityTechnique(100)
        assert len(technique.range_terms(10, 59)) == 50
        assert len(technique.update_terms(42)) == 1

    @pytest.mark.parametrize("size", [1, 2, 16, 100, 256, 1000])
    def test_rps_query_cost_constant(self, size):
        technique = RelativePrefixSumTechnique(size)
        for k in range(-1, size):
            assert len(technique.prefix_terms(k)) <= 2
        if size >= 2:
            assert len(technique.range_terms(0, size - 1)) <= 4

    @pytest.mark.parametrize("size", [1, 2, 16, 100, 256, 1000])
    def test_rps_update_cost_sqrt(self, size):
        technique = RelativePrefixSumTechnique(size)
        import math

        bound = 2 * (int(math.isqrt(size)) + 2)
        for i in range(size):
            assert len(technique.update_terms(i)) <= bound

    @pytest.mark.parametrize("size", [1, 2, 16, 100, 256, 1000])
    def test_lps_balanced_sqrt_costs(self, size):
        import math

        technique = LocalPrefixSumTechnique(size)
        bound = 2 * (int(math.isqrt(size)) + 2)
        for k in range(-1, size, max(1, size // 20)):
            assert len(technique.prefix_terms(k)) <= bound
        for i in range(0, size, max(1, size // 20)):
            assert len(technique.update_terms(i)) <= bound

    def test_rps_sits_between_ps_and_ddc(self):
        size = 4096
        rps = RelativePrefixSumTechnique(size)
        ps = PrefixSumTechnique(size)
        worst_rps = max(len(rps.update_terms(i)) for i in range(0, size, 37))
        worst_ps = max(len(ps.update_terms(i)) for i in range(0, size, 37))
        assert worst_rps < worst_ps  # updates far cheaper than PS
        assert max(len(rps.prefix_terms(k)) for k in range(size)) == 2


class TestDDCStructure:
    def test_prev_drops_lowest_bit(self):
        technique = DDCTechnique(16)
        assert technique.prev(6) == 5  # D[6] covers only A[6]
        assert technique.prev(5) == 3  # D[5] covers A[4..5]
        assert technique.prev(7) == -1  # D[7] covers A[0..7]

    def test_covers_partition_recovers_prefix(self):
        technique = DDCTechnique(32)
        for k in range(32):
            # following prev links from k partitions [0, k]
            spans = []
            j = k
            while j >= 0:
                spans.append(technique.covers(j))
                j = technique.prev(j)
            spans.reverse()
            assert spans[0][0] == 0
            assert spans[-1][1] == k
            for (_, end), (start, _) in zip(spans, spans[1:]):
                assert start == end + 1


class TestFactory:
    def test_by_name(self):
        assert isinstance(technique_by_name("ps", 4), PrefixSumTechnique)
        assert isinstance(technique_by_name("DDC", 4), DDCTechnique)
        assert isinstance(technique_by_name("a", 4), IdentityTechnique)
        assert isinstance(technique_by_name("identity", 4), IdentityTechnique)

    def test_rps(self):
        assert isinstance(
            technique_by_name("rps", 16), RelativePrefixSumTechnique
        )

    def test_unknown_name(self):
        with pytest.raises(DomainError):
            technique_by_name("btree", 4)
