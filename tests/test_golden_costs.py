"""Golden cost-model regression tests.

The reproduction's entire evaluation rests on counted accesses, so the
counts themselves are part of the contract.  These tests pin the exact
costs of small canonical scenarios; a change here means the cost model
moved and every regenerated figure needs re-reading.
"""

from __future__ import annotations

import numpy as np

from repro.core.types import Box
from repro.ecube.ecube import EvolvingDataCube
from repro.metrics import CostCounter
from repro.preagg.cube import PreAggregatedArray
from repro.preagg.ddc import DDCTechnique
from repro.preagg.prefix_sum import PrefixSumTechnique


class TestTechniqueTermCounts:
    def test_ddc_figure4_counts(self):
        technique = DDCTechnique(8)
        # the paper's worked example: q(2,6) touches exactly 4 cells
        assert len(technique.range_terms(2, 6)) == 4
        # prefix descents per index for N=8
        assert [len(technique.prefix_terms(k)) for k in range(8)] == [
            1, 1, 2, 1, 2, 2, 3, 1,
        ]
        # update ascents per index for N=8
        assert [len(technique.update_terms(i)) for i in range(8)] == [
            4, 3, 3, 2, 3, 2, 2, 1,
        ]

    def test_ps_counts(self):
        technique = PrefixSumTechnique(8)
        assert len(technique.range_terms(2, 6)) == 2
        assert len(technique.range_terms(0, 6)) == 1
        assert len(technique.update_terms(0)) == 8


class TestArrayQueryCosts:
    def test_ps_ddc_array_costs(self):
        counter = CostCounter()
        raw = np.ones((8, 8), dtype=np.int64)
        array = PreAggregatedArray(
            (8, 8), ["PS", "DDC"], values=raw, counter=counter
        )
        counter.reset()
        assert array.range_sum(Box((2, 2), (6, 6))) == 25
        # PS dim: 2 terms; DDC dim direct (2,6): 4 terms -> 8 reads
        assert counter.cell_reads == 8
        counter.reset()
        array.update((3, 3), 1)
        # PS dim: indices 3..7 (5 cells); DDC dim: update chain of 3 -> 2
        # cells {3, 7}? chain for i=3, N=8: j=4 -> D[3], j=8 -> D[7]: 2
        # cells; writes = 10 cells, plus one read per written cell
        assert counter.cell_writes == 10
        assert counter.cell_reads == 10


class TestECubeCanonicalCosts:
    def build(self):
        counter = CostCounter()
        cube = EvolvingDataCube((8, 8), num_times=4, counter=counter,
                                copy_budget=0)
        for t in range(4):
            for x in range(8):
                cube.update((t, x, (x * 3) % 8), 1)
        return cube, counter

    def test_historic_prefix_converges_to_single_read(self):
        cube, counter = self.build()
        box = Box((0, 0, 0), (2, 7, 7))  # full slice range, historic upper
        first = cube.query(box)
        counter.reset()
        assert cube.query(box) == first
        # converged: one corner per instance; lower instance floor(-1)
        # contributes nothing -> exactly 1 read
        assert counter.cell_reads == 1

    def test_converged_general_box_costs_eight_reads(self):
        cube, counter = self.build()
        box = Box((1, 1, 1), (2, 6, 6))
        first = cube.query(box)
        counter.reset()
        assert cube.query(box) == first
        # 2 instances x 4 corners (2 dims), each one converged read
        assert counter.cell_reads == 8

    def test_update_cost_exact(self):
        cube, counter = self.build()
        counter.reset()
        cube.update((3, 0, 0), 1)
        # DDC chains at (0,0) in an 8x8 slice: 4 cells per dim -> 16
        # affected cells; each costs one cache read + one write
        assert counter.cell_reads == 16
        assert counter.cell_writes == 16


class TestFigure6GoldenTrace:
    def test_worked_example_read_count(self):
        """Exact read count of the paper's Figure 6 conversion trace."""
        from repro.ecube.slices import ECubeSliceEngine

        engine = ECubeSliceEngine((8, 8))
        values = np.ones((8, 8), dtype=np.int64)
        for axis, technique in enumerate(engine.techniques):
            values = technique.aggregate(values, axis=axis)
        flags = np.zeros((8, 8), dtype=bool)
        reads = {"n": 0}

        def read(cell):
            reads["n"] += 1
            return int(values[cell]), bool(flags[cell])

        def mark(cell, ps_value):
            values[cell] = ps_value
            flags[cell] = True

        assert engine.prefix((2, 6), read, mark) == 21
        # the trace touches (2,6), (1,6), (1,5), (1,3)x3, (2,5), (2,3),
        # with converted revisits costing one read each: 10 in total
        assert reads["n"] == 10
        reads["n"] = 0
        assert engine.prefix((2, 3), read, mark) == 12
        assert reads["n"] == 1  # "returns after the first cell access"
