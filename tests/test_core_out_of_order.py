"""Tests for the G_d out-of-order buffer."""

from __future__ import annotations

import numpy as np

from repro.core.out_of_order import OutOfOrderBuffer
from repro.core.types import Box

from tests.conftest import random_box


class TestBuffer:
    def test_empty(self):
        buffer = OutOfOrderBuffer(2)
        assert len(buffer) == 0
        assert buffer.range_sum(Box((0, 0), (9, 9))) == 0
        assert buffer.drain() == []

    def test_add_and_query(self):
        buffer = OutOfOrderBuffer(2)
        buffer.add((3, 4), 5)
        buffer.add((3, 4), 2)  # duplicates accumulate
        buffer.add((7, 1), -3)
        assert len(buffer) == 3
        assert buffer.range_sum(Box((0, 0), (9, 9))) == 4
        assert buffer.range_sum(Box((3, 4), (3, 4))) == 7
        assert buffer.range_sum(Box((7, 0), (7, 9))) == -3

    def test_matches_brute_force(self):
        rng = np.random.default_rng(70)
        buffer = OutOfOrderBuffer(3)
        points = []
        for _ in range(200):
            point = tuple(int(c) for c in rng.integers(0, 20, size=3))
            delta = int(rng.integers(-5, 6))
            buffer.add(point, delta)
            points.append((point, delta))
        for _ in range(20):
            box = random_box(rng, (20, 20, 20))
            expected = sum(d for p, d in points if box.contains(p))
            assert buffer.range_sum(box) == expected

    def test_drain_newest_first(self):
        buffer = OutOfOrderBuffer(2)
        buffer.add((5, 0), 1)
        buffer.add((2, 0), 2)
        buffer.add((9, 0), 3)
        drained = buffer.drain()
        assert [p[0] for p, _ in drained] == [9, 5, 2]
        assert len(buffer) == 0
        assert buffer.range_sum(Box((0, 0), (9, 9))) == 0

    def test_partial_drain_keeps_rest_queryable(self):
        buffer = OutOfOrderBuffer(2)
        for t in range(10):
            buffer.add((t, 0), 1)
        drained = buffer.drain(limit=4)
        assert len(drained) == 4
        assert {p[0] for p, _ in drained} == {6, 7, 8, 9}  # newest times
        assert len(buffer) == 6
        assert buffer.range_sum(Box((0, 0), (9, 9))) == 6
        # draining again returns the next-newest batch
        drained = buffer.drain(limit=100)
        assert len(drained) == 6


class TestColumnarPaths:
    def test_add_many_matches_add(self):
        rng = np.random.default_rng(71)
        one = OutOfOrderBuffer(3)
        many = OutOfOrderBuffer(3)
        points = rng.integers(0, 20, size=(150, 3))
        deltas = rng.integers(-5, 6, size=150)
        for point, delta in zip(points, deltas):
            one.add(tuple(int(c) for c in point), int(delta))
        many.add_many(points, deltas)
        assert len(many) == len(one) == 150
        assert sorted(many.entries()) == sorted(one.entries())
        for _ in range(15):
            box = random_box(rng, (20, 20, 20))
            assert many.range_sum(box) == one.range_sum(box)

    def test_range_sum_fast_equals_metered(self):
        rng = np.random.default_rng(72)
        buffer = OutOfOrderBuffer(3)
        buffer.add_many(
            rng.integers(0, 16, size=(300, 3)), rng.integers(-4, 5, size=300)
        )
        for _ in range(25):
            box = random_box(rng, (16, 16, 16))
            assert buffer.range_sum(box, mode="fast") == buffer.range_sum(
                box, mode="metered"
            )

    def test_range_sum_many_matches_singles(self):
        rng = np.random.default_rng(73)
        buffer = OutOfOrderBuffer(2)
        buffer.add_many(
            rng.integers(0, 32, size=(400, 2)), rng.integers(-6, 7, size=400)
        )
        boxes = [random_box(rng, (32, 32)) for _ in range(50)]
        batch = buffer.range_sum_many(boxes)
        assert list(batch) == [buffer.range_sum(box) for box in boxes]
        assert buffer.range_sum_many([]) == []

    def test_range_sum_many_chunks_large_batches(self):
        # force the element budget to chunk: many points x many boxes
        rng = np.random.default_rng(74)
        buffer = OutOfOrderBuffer(2)
        buffer.add_many(
            rng.integers(0, 50, size=(5000, 2)), rng.integers(-3, 4, size=5000)
        )
        boxes = [random_box(rng, (50, 50)) for _ in range(900)]
        batch = buffer.range_sum_many(boxes)
        spot = rng.integers(0, 900, size=30)
        for i in spot:
            assert batch[int(i)] == buffer.range_sum(boxes[int(i)])


class TestDrainAccounting:
    def test_node_accesses_carried_across_full_drain(self):
        rng = np.random.default_rng(75)
        buffer = OutOfOrderBuffer(2)
        buffer.add_many(
            rng.integers(0, 40, size=(200, 2)), np.ones(200, dtype=np.int64)
        )
        for _ in range(10):
            buffer.range_sum(random_box(rng, (40, 40)))
        accesses_before = buffer.node_accesses
        assert accesses_before > 0
        buffer.drain()
        assert len(buffer) == 0
        # the cost of building and probing the drained tree is not lost
        assert buffer.node_accesses >= accesses_before

    def test_node_accesses_monotone_across_bounded_drains(self):
        rng = np.random.default_rng(76)
        buffer = OutOfOrderBuffer(2)
        buffer.add_many(
            rng.integers(0, 30, size=(120, 2)), np.ones(120, dtype=np.int64)
        )
        seen = buffer.node_accesses
        while len(buffer):
            buffer.drain(limit=13)
            buffer.range_sum(Box((0, 0), (29, 29)))
            assert buffer.node_accesses >= seen
            seen = buffer.node_accesses

    def test_queries_exact_during_bounded_drains(self):
        rng = np.random.default_rng(77)
        buffer = OutOfOrderBuffer(2)
        live = {}
        points = rng.integers(0, 25, size=(90, 2))
        deltas = rng.integers(-5, 6, size=90)
        buffer.add_many(points, deltas)
        for point, delta in zip(points, deltas):
            key = tuple(int(c) for c in point)
            live[key] = live.get(key, 0) + int(delta)
        while len(buffer):
            for point, delta in buffer.drain(limit=7):
                live[point] -= delta
            for _ in range(5):
                box = random_box(rng, (25, 25))
                expected = sum(
                    d for p, d in live.items() if box.contains(p)
                )
                assert buffer.range_sum(box) == expected
                fast = buffer.range_sum_many([box])
                assert fast[0] == expected
