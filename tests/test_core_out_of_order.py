"""Tests for the G_d out-of-order buffer."""

from __future__ import annotations

import numpy as np

from repro.core.out_of_order import OutOfOrderBuffer
from repro.core.types import Box

from tests.conftest import random_box


class TestBuffer:
    def test_empty(self):
        buffer = OutOfOrderBuffer(2)
        assert len(buffer) == 0
        assert buffer.range_sum(Box((0, 0), (9, 9))) == 0
        assert buffer.drain() == []

    def test_add_and_query(self):
        buffer = OutOfOrderBuffer(2)
        buffer.add((3, 4), 5)
        buffer.add((3, 4), 2)  # duplicates accumulate
        buffer.add((7, 1), -3)
        assert len(buffer) == 3
        assert buffer.range_sum(Box((0, 0), (9, 9))) == 4
        assert buffer.range_sum(Box((3, 4), (3, 4))) == 7
        assert buffer.range_sum(Box((7, 0), (7, 9))) == -3

    def test_matches_brute_force(self):
        rng = np.random.default_rng(70)
        buffer = OutOfOrderBuffer(3)
        points = []
        for _ in range(200):
            point = tuple(int(c) for c in rng.integers(0, 20, size=3))
            delta = int(rng.integers(-5, 6))
            buffer.add(point, delta)
            points.append((point, delta))
        for _ in range(20):
            box = random_box(rng, (20, 20, 20))
            expected = sum(d for p, d in points if box.contains(p))
            assert buffer.range_sum(box) == expected

    def test_drain_newest_first(self):
        buffer = OutOfOrderBuffer(2)
        buffer.add((5, 0), 1)
        buffer.add((2, 0), 2)
        buffer.add((9, 0), 3)
        drained = buffer.drain()
        assert [p[0] for p, _ in drained] == [9, 5, 2]
        assert len(buffer) == 0
        assert buffer.range_sum(Box((0, 0), (9, 9))) == 0

    def test_partial_drain_keeps_rest_queryable(self):
        buffer = OutOfOrderBuffer(2)
        for t in range(10):
            buffer.add((t, 0), 1)
        drained = buffer.drain(limit=4)
        assert len(drained) == 4
        assert {p[0] for p, _ in drained} == {6, 7, 8, 9}  # newest times
        assert len(buffer) == 6
        assert buffer.range_sum(Box((0, 0), (9, 9))) == 6
        # draining again returns the next-newest batch
        drained = buffer.drain(limit=100)
        assert len(drained) == 6
