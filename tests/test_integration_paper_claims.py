"""Integration tests asserting the paper's analytical claims end to end.

Each test corresponds to a quantitative statement in the paper:

* Section 3.2: historic-slice queries cost at most ``(2 log2 N)^(d-1)``
  cell accesses and converge toward ``2^(d-1)``;
* Section 3.4: the total query cost is at most ``2^d (log2 N)^(d-1)``
  and the cache update cost at most ``(log2 N)^(d-1)`` affected cells;
* Section 2.3: the d-dimensional query is exactly two (d-1)-dimensional
  queries plus directory lookups;
* Section 5: all structures answering the same workload agree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import AppendOnlyAggregator
from repro.core.types import Box
from repro.ecube.disk import DiskEvolvingDataCube
from repro.ecube.ecube import EvolvingDataCube
from repro.metrics import CostCounter
from repro.preagg.cube import PreAggregatedArray
from repro.workloads.datasets import uniform
from repro.workloads.queries import uni_queries

from tests.conftest import brute_box_sum


@pytest.fixture(scope="module")
def workload():
    shape = (32, 16, 16)
    data = uniform(shape, density=0.08, seed=77)
    dense = data.dense()
    queries = uni_queries(shape, 120, seed=78)
    return data, dense, queries


class TestAllStructuresAgree:
    def test_cross_validation(self, workload):
        data, dense, queries = workload
        counter = CostCounter()
        ecube = EvolvingDataCube(data.slice_shape, counter=counter)
        disk = DiskEvolvingDataCube(data.slice_shape, page_size=256)
        for point, delta in data.updates():
            ecube.update(point, delta)
            disk.update(point, delta)
        ddc = PreAggregatedArray(
            data.shape, ["PS", "DDC", "DDC"], values=dense
        )
        ps = PreAggregatedArray(data.shape, ["PS", "PS", "PS"], values=dense)
        for box in queries:
            expected = brute_box_sum(dense, box)
            assert ecube.query(box) == expected
            assert disk.query(box) == expected
            assert ddc.range_sum(box) == expected
            assert ps.range_sum(box) == expected


class TestCostBounds:
    def test_query_cost_bound_2d_logd(self, workload):
        """Worst case 2^d (log2 N)^(d-1) of Section 3.4."""
        data, _dense, queries = workload
        counter = CostCounter()
        ecube = EvolvingDataCube(data.slice_shape, counter=counter)
        for point, delta in data.updates():
            ecube.update(point, delta)
        d = data.ndim
        log_n = max(n.bit_length() for n in data.slice_shape)
        bound = (2**d) * (log_n ** (d - 1))
        for box in queries:
            counter.reset()
            ecube.query(box)
            assert counter.cell_reads <= bound

    def test_update_cache_cost_bound(self, workload):
        """Updates touch at most (log2 N)^(d-1) cache cells."""
        data, _dense, _queries = workload
        counter = CostCounter()
        ecube = EvolvingDataCube(
            data.slice_shape, counter=counter, copy_budget=0
        )
        bound = 1
        for n in data.slice_shape:
            bound *= n.bit_length()
        for point, delta in data.updates():
            before = counter.snapshot()
            ecube.update(point, delta)
            delta_cost = counter.snapshot() - before
            # each affected cache cell costs a read and a write; forced
            # copies are tagged separately
            assert delta_cost.cost_without_copy <= 2 * bound

    def test_converged_query_cost_approaches_ps(self, workload):
        data, _dense, queries = workload
        counter = CostCounter()
        ecube = EvolvingDataCube(data.slice_shape, counter=counter)
        for point, delta in data.updates():
            ecube.update(point, delta)
        # drive conversion hard with the workload, then measure re-runs
        for _ in range(2):
            for box in queries:
                ecube.query(box)
        d_minus_1 = data.ndim - 1
        ps_like = 0
        for box in queries:
            counter.reset()
            ecube.query(box)
            if counter.cell_reads <= 2 * (2**d_minus_1):
                ps_like += 1
        # the vast majority of repeated queries run at (converged) PS cost;
        # queries whose upper time bound hits the latest instance keep DDC
        # cost (conversions are never persisted there), hence not 100 %
        assert ps_like >= int(0.85 * len(queries))


class TestFrameworkReduction:
    def test_two_slice_queries_per_cube_query(self):
        """Section 2.3: a d-dim query = two (d-1)-dim prefix-time queries."""
        agg = AppendOnlyAggregator(ndim=2)
        rng = np.random.default_rng(79)
        for t in range(50):
            agg.update((t, int(rng.integers(0, 100))), 1)
        tree = agg._live
        lookups_before = agg.directory.lookups
        agg.query(Box((10, 0), (40, 99)))
        # exactly two directory lookups (floor for upper, floor for lower)
        assert agg.directory.lookups - lookups_before == 2

    def test_query_cost_independent_of_history_length(self):
        """The headline claim: cost does not grow with the TT extent."""
        def mean_query_cost(num_times: int) -> float:
            counter = CostCounter()
            cube = EvolvingDataCube((16, 16), counter=counter)
            rng = np.random.default_rng(80)
            for t in range(num_times):
                cube.update(
                    (t, int(rng.integers(0, 16)), int(rng.integers(0, 16))), 1
                )
            boxes = [
                Box(
                    (num_times // 4, 2, 2),
                    (num_times // 2, 13, 13),
                )
                for _ in range(20)
            ]
            # converge, then measure
            for box in boxes:
                cube.query(box)
            counter.reset()
            for box in boxes:
                cube.query(box)
            return counter.cell_reads / len(boxes)

        short = mean_query_cost(32)
        long = mean_query_cost(512)
        # 16x more history must not make queries meaningfully dearer
        assert long <= short * 1.5 + 4


class TestDataAging:
    def test_historic_slices_cluster_by_time(self):
        """Section 7: the technique clusters data by time coordinate,
        simplifying data aging -- a historic slice is self-contained."""
        cube = EvolvingDataCube((8,))
        for t in range(10):
            cube.update((t, t % 8), t + 1)
        # query the full history, forcing conversion/copies
        total = cube.query(Box((0, 0), (9, 7)))
        assert total == sum(range(1, 11))
        # every historic slice payload is an independent array: retiring
        # (dropping) the oldest slices cannot affect newer queries
        assert cube.query(Box((5, 0), (9, 7))) == 6 + 7 + 8 + 9 + 10
