"""Tests for interval objects with extent in the TT-dimension (Section 2.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import AppendOrderError
from repro.core.extent import IntervalAggregator
from repro.core.types import TimeInterval


def brute_intersecting(objects, query, key_low, key_up):
    return sum(
        v
        for interval, key, v in objects
        if interval.intersects(query) and key_low <= key <= key_up
    )


def brute_containment(objects, query):
    return sum(v for interval, _key, v in objects if interval.contained_in(query))


def random_objects(rng, count, horizon=60, keys=10):
    objects = []
    starts = np.sort(rng.integers(0, horizon, size=count))
    for start in starts:
        end = int(start + rng.integers(0, horizon // 3))
        objects.append(
            (
                TimeInterval(int(start), end),
                int(rng.integers(0, keys)),
                int(rng.integers(1, 5)),
            )
        )
    return objects


class TestAppendDiscipline:
    def test_starts_must_not_regress_past_clock(self):
        agg = IntervalAggregator()
        agg.insert(TimeInterval(5, 9), key=0)
        agg.intersecting(TimeInterval(0, 20), 0, 10)  # advances clock to 20
        with pytest.raises(AppendOrderError):
            agg.insert(TimeInterval(10, 12), key=0)

    def test_inserts_in_start_order_ok(self):
        agg = IntervalAggregator()
        agg.insert(TimeInterval(0, 100), key=1)
        agg.insert(TimeInterval(0, 3), key=2)
        agg.insert(TimeInterval(7, 9), key=3)
        assert agg.objects_inserted == 3


class TestIntersecting:
    def test_paper_equation_components(self):
        # b(t_up) + c(t_up) - b(t_low)
        agg = IntervalAggregator()
        agg.insert(TimeInterval(0, 4), key=1)   # ends before query
        agg.insert(TimeInterval(2, 8), key=1)   # spans the query start
        agg.insert(TimeInterval(6, 12), key=1)  # alive at t_up
        assert agg.intersecting(TimeInterval(5, 10), 0, 9) == 2

    def test_interval_touching_boundaries_counts(self):
        agg = IntervalAggregator()
        agg.insert(TimeInterval(0, 5), key=1)
        agg.insert(TimeInterval(10, 15), key=1)
        # touching at the endpoints intersects
        assert agg.intersecting(TimeInterval(5, 10), 0, 9) == 2
        assert agg.intersecting(TimeInterval(6, 9), 0, 9) == 0

    def test_key_range_filters(self):
        agg = IntervalAggregator()
        agg.insert(TimeInterval(0, 10), key=1, value=5)
        agg.insert(TimeInterval(0, 10), key=7, value=9)
        assert agg.intersecting(TimeInterval(0, 10), 0, 3) == 5
        assert agg.intersecting(TimeInterval(0, 10), 5, 9) == 9
        assert agg.intersecting(TimeInterval(0, 10), 0, 9) == 14

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_matches_brute_force(self, data):
        seed = data.draw(st.integers(0, 2**31))
        count = data.draw(st.integers(1, 60))
        rng = np.random.default_rng(seed)
        objects = random_objects(rng, count)
        agg = IntervalAggregator()
        for interval, key, value in objects:
            agg.insert(interval, key, value)
        # queries in increasing end order (they advance the clock)
        ends = np.sort(rng.integers(0, 90, size=8))
        for end in ends:
            start = int(rng.integers(0, end + 1))
            key_low = int(rng.integers(0, 10))
            key_up = int(rng.integers(key_low, 10))
            query = TimeInterval(start, int(end))
            assert agg.intersecting(query, key_low, key_up) == brute_intersecting(
                objects, query, key_low, key_up
            )


class TestContainment:
    def test_basic(self):
        agg = IntervalAggregator()
        agg.insert(TimeInterval(0, 4), key=1)
        agg.insert(TimeInterval(2, 8), key=1)
        agg.insert(TimeInterval(3, 3), key=1)
        assert agg.containment(TimeInterval(0, 4)) == 2
        assert agg.containment(TimeInterval(0, 8)) == 3
        assert agg.containment(TimeInterval(5, 9)) == 0

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_matches_brute_force(self, data):
        seed = data.draw(st.integers(0, 2**31))
        count = data.draw(st.integers(1, 50))
        rng = np.random.default_rng(seed)
        objects = random_objects(rng, count)
        agg = IntervalAggregator()
        for interval, key, value in objects:
            agg.insert(interval, key, value)
        ends = np.sort(rng.integers(0, 90, size=6))
        for end in ends:
            start = int(rng.integers(0, end + 1))
            query = TimeInterval(start, int(end))
            assert agg.containment(query) == brute_containment(objects, query)


class TestAliveAt:
    def test_c_family(self):
        agg = IntervalAggregator()
        agg.insert(TimeInterval(0, 4), key=1, value=2)
        agg.insert(TimeInterval(3, 9), key=2, value=5)
        assert agg.alive_at(0, 0, 9) == 2
        assert agg.alive_at(3, 0, 9) == 7
        assert agg.alive_at(4, 0, 9) == 7  # interval contains its endpoint
        assert agg.alive_at(5, 0, 9) == 5

    def test_update_cost_shape(self):
        # an insert touches C once; its end later triggers one delete from
        # C and one insert to B (storage roughly doubles)
        agg = IntervalAggregator()
        agg.insert(TimeInterval(0, 2), key=1)
        assert agg.pending_ends == 1
        agg.alive_at(10, 0, 9)  # flushes the end event
        assert agg.pending_ends == 0
