"""Tests for the multi-dimensional pre-aggregated array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DomainError
from repro.core.types import Box, full_box
from repro.metrics import CostCounter
from repro.preagg.cube import PreAggregatedArray, combine_terms

from tests.conftest import brute_box_sum, random_box

TECH_COMBOS = [
    ("PS", "PS"),
    ("DDC", "DDC"),
    ("PS", "DDC"),
    ("DDC", "PS"),
    ("A", "DDC"),
    ("PS", "A"),
    ("RPS", "RPS"),
    ("PS", "RPS"),
    ("RPS", "DDC"),
    ("LPS", "LPS"),
    ("PS", "LPS"),
]


class TestCombineTerms:
    def test_cross_product_multiplies_coefficients(self):
        per_dim = [[(0, 1), (2, -1)], [(5, 1)]]
        assert sorted(combine_terms(per_dim)) == [((0, 5), 1), ((2, 5), -1)]

    def test_three_dimensions(self):
        per_dim = [[(1, -1)], [(2, -1)], [(3, -1)]]
        assert list(combine_terms(per_dim)) == [((1, 2, 3), -1)]


class TestConstruction:
    def test_technique_count_must_match(self):
        with pytest.raises(DomainError):
            PreAggregatedArray((4, 4), ["PS"])

    def test_technique_size_must_match(self):
        from repro.preagg.ddc import DDCTechnique

        with pytest.raises(DomainError):
            PreAggregatedArray((4, 4), [DDCTechnique(4), DDCTechnique(5)])

    def test_values_shape_must_match(self):
        with pytest.raises(DomainError):
            PreAggregatedArray((4, 4), ["PS", "PS"], values=np.zeros((4, 5)))

    def test_starts_zeroed_without_values(self):
        arr = PreAggregatedArray((3, 3), ["PS", "DDC"])
        assert arr.range_sum(full_box((3, 3))) == 0


@pytest.mark.parametrize("techs", TECH_COMBOS)
class TestTwoDimensionalCorrectness:
    def test_full_box_equals_total(self, techs, rng):
        raw = rng.integers(-5, 20, size=(8, 16))
        arr = PreAggregatedArray(raw.shape, list(techs), values=raw)
        assert arr.range_sum(full_box(raw.shape)) == raw.sum()

    def test_random_boxes(self, techs, rng):
        raw = rng.integers(-5, 20, size=(8, 16))
        arr = PreAggregatedArray(raw.shape, list(techs), values=raw)
        for _ in range(40):
            box = random_box(rng, raw.shape)
            assert arr.range_sum(box) == brute_box_sum(raw, box)

    def test_updates_then_queries(self, techs, rng):
        raw = rng.integers(0, 10, size=(8, 16))
        arr = PreAggregatedArray(raw.shape, list(techs), values=raw)
        for _ in range(25):
            point = (int(rng.integers(0, 8)), int(rng.integers(0, 16)))
            delta = int(rng.integers(-9, 10))
            arr.update(point, delta)
            raw[point] += delta
        for _ in range(25):
            box = random_box(rng, raw.shape)
            assert arr.range_sum(box) == brute_box_sum(raw, box)

    def test_to_raw_roundtrip(self, techs, rng):
        raw = rng.integers(-50, 50, size=(8, 16))
        arr = PreAggregatedArray(raw.shape, list(techs), values=raw)
        assert (arr.to_raw() == raw).all()


class TestHigherDimensions:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_small_cubes(self, data):
        shape = tuple(
            data.draw(st.integers(1, 6), label=f"dim{i}") for i in range(3)
        )
        techs = [
            data.draw(st.sampled_from(["A", "PS", "DDC", "RPS", "LPS"]), label=f"tech{i}")
            for i in range(3)
        ]
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        raw = rng.integers(-10, 10, size=shape)
        arr = PreAggregatedArray(shape, techs, values=raw)
        for _ in range(5):
            box = random_box(rng, shape)
            assert arr.range_sum(box) == brute_box_sum(raw, box)
        point = tuple(int(rng.integers(0, n)) for n in shape)
        arr.update(point, 7)
        raw[point] += 7
        assert arr.range_sum(full_box(shape)) == raw.sum()

    def test_five_dimensional_cube(self, rng):
        shape = (4, 3, 5, 2, 3)
        raw = rng.integers(0, 5, size=shape)
        arr = PreAggregatedArray(shape, ["PS", "DDC", "DDC", "DDC", "DDC"], values=raw)
        for _ in range(20):
            box = random_box(rng, shape)
            assert arr.range_sum(box) == brute_box_sum(raw, box)


class TestPrefixSumQueries:
    def test_prefix_with_minus_one_dims(self, rng):
        raw = rng.integers(0, 10, size=(6, 6))
        arr = PreAggregatedArray(raw.shape, ["PS", "DDC"], values=raw)
        assert arr.prefix_sum((-1, 3)) == 0
        assert arr.prefix_sum((3, -1)) == 0
        assert arr.prefix_sum((3, 4)) == raw[:4, :5].sum()

    def test_prefix_arity_checked(self):
        arr = PreAggregatedArray((4, 4), ["PS", "PS"])
        with pytest.raises(DomainError):
            arr.prefix_sum((1,))


class TestCostAccounting:
    def test_query_reads_counted(self):
        counter = CostCounter()
        raw = np.ones((8, 8), dtype=np.int64)
        arr = PreAggregatedArray(raw.shape, ["PS", "PS"], values=raw, counter=counter)
        arr.range_sum(Box((2, 2), (5, 5)))
        assert counter.cell_reads == 4  # 2 PS terms per dimension

    def test_ddc_query_cost_within_bound(self):
        counter = CostCounter()
        raw = np.ones((16, 16), dtype=np.int64)
        arr = PreAggregatedArray(raw.shape, ["DDC", "DDC"], values=raw, counter=counter)
        arr.range_sum(Box((1, 1), (14, 14)))
        # <= (2 log2 16)^2 = 64
        assert counter.cell_reads <= 64

    def test_update_touch_count_returned(self):
        arr = PreAggregatedArray((16,), ["DDC"])
        touched = arr.update((0,), 5)
        assert touched == len(arr.techniques[0].update_terms(0))

    def test_update_out_of_domain(self):
        arr = PreAggregatedArray((4, 4), ["PS", "PS"])
        with pytest.raises(DomainError):
            arr.update((4, 0), 1)

    def test_range_term_cells_do_not_charge(self):
        counter = CostCounter()
        arr = PreAggregatedArray(
            (8, 8), ["PS", "DDC"], values=np.ones((8, 8)), counter=counter
        )
        counter.reset()
        terms = arr.range_term_cells(Box((1, 1), (6, 6)))
        assert counter.cell_reads == 0
        assert terms  # non-empty access pattern
        # evaluating the terms reproduces the query result
        value = sum(coeff * int(arr.cells[cell]) for cell, coeff in terms)
        assert value == 36
