"""Tests for boxes, intervals and coordinate helpers."""

from __future__ import annotations

import pytest

from repro.core.errors import DomainError
from repro.core.types import Box, TimeInterval, as_point, full_box


class TestBox:
    def test_normalizes_to_int_tuples(self):
        box = Box([1.0, 2.0], [3.0, 4.0])
        assert box.lower == (1, 2)
        assert box.upper == (3, 4)

    def test_rejects_arity_mismatch(self):
        with pytest.raises(DomainError):
            Box((1, 2), (3,))

    def test_rejects_inverted_range(self):
        with pytest.raises(DomainError):
            Box((5,), (3,))

    def test_contains(self):
        box = Box((0, 0), (2, 2))
        assert box.contains((1, 1))
        assert box.contains((0, 2))
        assert not box.contains((3, 0))

    def test_intersects(self):
        a = Box((0, 0), (4, 4))
        assert a.intersects(Box((4, 4), (9, 9)))
        assert not a.intersects(Box((5, 0), (9, 4)))

    def test_volume(self):
        assert Box((0, 0), (1, 2)).volume() == 6
        assert Box((3,), (3,)).volume() == 1

    def test_clip_to_shape(self):
        box = Box((-3, 2), (100, 3)).clip_to((10, 10))
        assert box == Box((0, 2), (9, 3))

    def test_clip_to_empty_raises(self):
        with pytest.raises(DomainError):
            Box((12, 0), (15, 3)).clip_to((10, 10))

    def test_drop_first_and_time_range(self):
        box = Box((2, 0, 1), (7, 3, 4))
        assert box.time_range == (2, 7)
        assert box.drop_first() == Box((0, 1), (3, 4))

    def test_iter_points(self):
        points = list(Box((0, 0), (1, 1)).iter_points())
        assert points == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_full_box(self):
        assert full_box((3, 4)) == Box((0, 0), (2, 3))


class TestTimeInterval:
    def test_rejects_inverted(self):
        with pytest.raises(DomainError):
            TimeInterval(5, 3)

    def test_contains_time(self):
        interval = TimeInterval(2, 5)
        assert interval.contains_time(2)
        assert interval.contains_time(5)
        assert not interval.contains_time(6)

    def test_intersects(self):
        assert TimeInterval(0, 3).intersects(TimeInterval(3, 9))
        assert not TimeInterval(0, 3).intersects(TimeInterval(4, 9))

    def test_contained_in(self):
        assert TimeInterval(2, 3).contained_in(TimeInterval(0, 5))
        assert not TimeInterval(2, 6).contained_in(TimeInterval(0, 5))


def test_as_point():
    assert as_point([1.0, 2]) == (1, 2)
