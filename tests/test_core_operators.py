"""Tests for the invertible-operator layer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import OperatorError
from repro.core.operators import (
    AVERAGE,
    COUNT,
    SUM,
    Operator,
    SumCount,
    get_operator,
    register_operator,
)


class TestSum:
    @given(st.integers(), st.integers())
    def test_subtract_inverts_combine(self, a, b):
        assert SUM.subtract(SUM.combine(a, b), b) == a

    def test_fold(self):
        assert SUM.fold([1, 2, 3]) == 6
        assert SUM.fold([]) == SUM.identity


class TestAverage:
    def test_pairing_keeps_average_invertible(self):
        total = AVERAGE.combine(SumCount(10.0, 2), SumCount(20.0, 3))
        assert total.average == 6.0
        without = AVERAGE.subtract(total, SumCount(20.0, 3))
        assert without.average == 5.0

    def test_empty_average_rejected(self):
        with pytest.raises(OperatorError):
            _ = SumCount().average


class TestRegistry:
    def test_lookup(self):
        assert get_operator("sum") is SUM
        assert get_operator("COUNT") is COUNT
        assert get_operator("avg") is AVERAGE

    def test_non_invertible_rejected_with_explanation(self):
        with pytest.raises(OperatorError, match="not invertible"):
            get_operator("MIN")
        with pytest.raises(OperatorError, match="not invertible"):
            get_operator("max")

    def test_unknown_rejected(self):
        with pytest.raises(OperatorError, match="unknown"):
            get_operator("median-ish")

    def test_custom_registration(self):
        xor = Operator("XOR-TEST", lambda a, b: a ^ b, 0, lambda a: a)
        register_operator(xor)
        assert get_operator("xor-test") is xor
        assert xor.subtract(xor.combine(5, 9), 9) == 5
