"""Durability of TT-extent objects: WAL records, crashes, checkpoints, CLI.

The extent cube's queries are pure, so its durable state is a function
of the mutation sequence alone.  These tests truncate the log at
arbitrary byte offsets and require recovery to reach a state
*bit-identical* (``state_arrays``) to a live replica that applied the
surviving operation prefix -- with and without an intervening
checkpoint -- plus codec coverage for the three interval record types
and the ``python -m repro`` operational commands on extent directories.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.__main__ import main as repro_main
from repro.core.errors import RecoveryError, StorageError
from repro.core.types import Box, TimeInterval
from repro.durability import DurableCube, DurableExtentCube
from repro.durability.extent import build_extent_front
from repro.durability.recovery import WAL_SUBDIR
from repro.durability.wal import (
    _FRAME,
    _HEADER,
    AdvanceRecord,
    IntervalBatchRecord,
    IntervalInsertRecord,
    WriteAheadLog,
    decode_payload,
    encode_record,
    inspect_log,
)

BACKENDS = ["dense", "paged", "sparse"]
SHAPE = (4, 4)


def _backend_kwargs(backend):
    return {"page_size": 4, "cell_size": 3} if backend == "paged" else {}


def _make_ops(rng, count):
    """A mixed extent workload whose every operation succeeds when applied.

    Invariants: ``advance`` never moves backwards, inserts (late ones
    included) never start before the retirement boundary, and every
    ``retire`` is preceded by a drain so no buffered start can age out.
    """
    ops = []
    clock = 0
    boundary = 0

    def _cell():
        return int(rng.integers(0, 4)), int(rng.integers(0, 4))

    for _ in range(count):
        roll = float(rng.random())
        if roll < 0.5:
            start = int(rng.integers(boundary, clock + 12))
            ops.append(
                (
                    "insert",
                    (start, start + int(rng.integers(0, 15))),
                    _cell(),
                    int(rng.integers(1, 6)),
                )
            )
            clock = max(clock, start)
        elif roll < 0.7:
            n = int(rng.integers(1, 6))
            starts = rng.integers(boundary, clock + 12, size=n)
            intervals = np.column_stack(
                (starts, starts + rng.integers(0, 15, size=n))
            ).astype(np.int64)
            cells = rng.integers(0, 4, size=(n, 2)).astype(np.int64)
            values = rng.integers(1, 6, size=n).astype(np.int64)
            mode = "fast" if rng.random() < 0.7 else "metered"
            ops.append(("insert_many", intervals, cells, values, mode))
            clock = max(clock, int(starts.max()))
        elif roll < 0.8:
            clock += int(rng.integers(0, 10))
            ops.append(("advance", clock))
        elif roll < 0.9:
            ops.append(("drain", None if rng.random() < 0.5 else int(rng.integers(1, 5))))
        else:
            ops.append(("drain", None))
            boundary = int(rng.integers(boundary, clock + 1))
            ops.append(("retire", boundary))
    return ops


def _apply_op(front, op):
    kind = op[0]
    if kind == "insert":
        front.insert(op[1], op[2], op[3])
    elif kind == "insert_many":
        front.insert_many(op[1], op[2], op[3], mode=op[4])
    elif kind == "advance":
        front.advance(op[1])
    elif kind == "drain":
        front.drain(op[1])
    else:
        front.retire_before(op[1])
    return 1 if kind != "retire" else 1


def _retire_boundary(ops):
    return max((op[1] for op in ops if op[0] == "retire"), default=0)


def _assert_bit_identical(recovered_front, replica, boundary=0):
    ours = recovered_front.state_arrays()
    theirs = replica.state_arrays()
    assert sorted(ours) == sorted(theirs)
    for key in ours:
        assert ours[key].tobytes() == theirs[key].tobytes(), key
    # intersection queries must stay at or after the retirement boundary
    queries = [
        TimeInterval(boundary, boundary + 200),
        TimeInterval(boundary + 5, boundary + 30),
        TimeInterval(boundary + 40, boundary + 41),
    ]
    boxes = [None, Box((1, 0), (3, 3)), None]
    assert recovered_front.intersecting_many(queries, boxes) == (
        replica.intersecting_many(queries, boxes)
    )
    # containment is index-based: exact even below the boundary
    containment = [TimeInterval(0, 500)] + queries
    assert recovered_front.containment_many(containment) == (
        replica.containment_many(containment)
    )


class TestCodec:
    def test_interval_record_round_trip_exact_layout(self):
        record = IntervalInsertRecord(-3, 9, (2, 0, 5), -7)
        frame = encode_record(record, 42)
        lsn, got = decode_payload(frame[_FRAME.size :])
        assert (lsn, got) == (42, record)

    def test_interval_batch_metered_mode_round_trip(self):
        record = IntervalBatchRecord(
            np.array([[0, 4], [2, 2]], dtype=np.int64),
            np.array([[1], [3]], dtype=np.int64),
            np.array([5, -1], dtype=np.int64),
            mode="metered",
        )
        frame = encode_record(record, 7)
        _, got = decode_payload(frame[_FRAME.size :])
        assert got == record
        assert got.mode == "metered"

    def test_advance_round_trip_through_log(self, tmp_path):
        records = [
            IntervalInsertRecord(0, 3, (1,), 2),
            AdvanceRecord(17),
            IntervalBatchRecord(
                np.array([[1, 1]], dtype=np.int64),
                np.array([[0]], dtype=np.int64),
                np.array([1], dtype=np.int64),
            ),
        ]
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            for record in records:
                wal.append(record)
        with WriteAheadLog(tmp_path, fsync="off") as wal:
            assert [r for _, r in wal.replay()] == records
        counts = inspect_log(tmp_path)["record_counts"]
        assert counts == {
            "interval_insert": 1,
            "advance": 1,
            "interval_batch": 1,
        }


@pytest.mark.parametrize("backend", BACKENDS)
def test_crash_at_random_offsets_recovers_surviving_prefix(tmp_path, backend):
    rng = np.random.default_rng(31 + BACKENDS.index(backend))
    ops = _make_ops(rng, count=40)
    origin = tmp_path / "origin"
    cube = DurableExtentCube(
        SHAPE,
        origin,
        backend=backend,
        fsync="off",
        segment_bytes=2048,
        **_backend_kwargs(backend),
    )
    config = dict(cube._config)
    for op in ops:
        _apply_op(cube, op)
    cube.close()

    wal_dir = origin / WAL_SUBDIR
    tail = sorted(wal_dir.glob("wal-*.log"))[-1]
    tail_size = tail.stat().st_size
    cuts = [tail_size] + [
        _HEADER.size + int(rng.integers(0, tail_size - _HEADER.size + 1))
        for _ in range(4)
    ]
    for case, cut in enumerate(cuts):
        crash_dir = tmp_path / f"crash-{case}"
        shutil.copytree(origin, crash_dir)
        with open(crash_dir / WAL_SUBDIR / tail.name, "r+b") as handle:
            handle.truncate(cut)
        survivors = inspect_log(crash_dir / WAL_SUBDIR)["records"]
        recovered = DurableExtentCube.recover(crash_dir)
        assert recovered.recovery_info["replayed_records"] == survivors
        assert recovered.recovery_info["skipped_records"] == 0

        replica = build_extent_front(config, counter=None)
        for op in ops[:survivors]:
            _apply_op(replica, op)
        boundary = _retire_boundary(ops[:survivors])
        _assert_bit_identical(recovered.front, replica, boundary)

        # the survivor keeps logging and recovers once more
        recovered.insert((200, 210), (0, 0), 3)
        replica.insert((200, 210), (0, 0), 3)
        recovered.close()
        reopened = DurableExtentCube.recover(crash_dir)
        _assert_bit_identical(reopened.front, replica, boundary)
        reopened.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_checkpoint_then_tail_replay_is_bit_identical(tmp_path, backend):
    rng = np.random.default_rng(63)
    ops = _make_ops(rng, count=32)
    cube = DurableExtentCube(
        SHAPE, tmp_path, backend=backend, fsync="off", **_backend_kwargs(backend)
    )
    for op in ops[:18]:
        _apply_op(cube, op)
    manifest = cube.checkpoint()
    assert manifest.checkpoint_id == 1
    for op in ops[18:]:
        _apply_op(cube, op)
    cube.close()

    recovered = DurableExtentCube.recover(tmp_path)
    assert recovered.recovery_info["checkpoint_id"] == 1
    # only the tail is replayed
    assert recovered.recovery_info["replayed_records"] < len(ops)
    replica = build_extent_front(dict(cube._config), counter=None)
    for op in ops:
        _apply_op(replica, op)
    _assert_bit_identical(recovered.front, replica, _retire_boundary(ops))
    recovered.close()


class TestDispatch:
    def test_point_recover_refuses_extent_directory(self, tmp_path):
        cube = DurableExtentCube(SHAPE, tmp_path, fsync="off")
        cube.insert((0, 3), (1, 1), 2)
        cube.close()
        with pytest.raises(RecoveryError, match="TT-extent"):
            DurableCube.recover(tmp_path)

    def test_extent_recover_refuses_point_directory(self, tmp_path):
        cube = DurableCube((4, 4), tmp_path, fsync="off")
        cube.update((0, 1, 1), 2)
        cube.close()
        with pytest.raises(RecoveryError, match="point-object"):
            DurableExtentCube.recover(tmp_path)

    def test_reopening_as_new_cube_is_refused(self, tmp_path):
        DurableExtentCube(SHAPE, tmp_path, fsync="off").close()
        with pytest.raises(StorageError):
            DurableExtentCube(SHAPE, tmp_path, fsync="off")


class TestCli:
    def _populate(self, directory):
        cube = DurableExtentCube(SHAPE, directory, fsync="off")
        cube.insert((0, 9), (1, 1), 2)
        cube.insert_many(
            np.array([[2, 5], [4, 30]], dtype=np.int64),
            np.array([[0, 0], [3, 3]], dtype=np.int64),
            np.array([1, 4], dtype=np.int64),
        )
        cube.advance(12)
        cube.close()

    def test_log_info_renders_interval_records(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert repro_main(["log-info", str(tmp_path)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["extent"] is True
        assert info["record_counts"] == {
            "interval_insert": 1,
            "interval_batch": 1,
            "advance": 1,
        }

    def test_recover_reports_extent_state(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert repro_main(["recover", str(tmp_path)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["extent"] is True
        assert info["objects_inserted"] == 3
        assert info["clock"] == 12

    def test_checkpoint_command_dispatches_to_extent(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert repro_main(["checkpoint", str(tmp_path)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["checkpoint_id"] == 1
        # and the compacted directory still recovers
        recovered = DurableExtentCube.recover(tmp_path)
        assert recovered.intersecting(TimeInterval(0, 40)) == 7
        recovered.close()
