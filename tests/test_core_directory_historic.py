"""Tests for historic inserts into the time directory (drain support)."""

from __future__ import annotations

import pytest

from repro.core.directory import TimeDirectory
from repro.core.errors import AppendOrderError, EmptyStructureError


@pytest.fixture
def directory() -> TimeDirectory[str]:
    d: TimeDirectory[str] = TimeDirectory()
    for time, payload in [(2, "a"), (5, "b"), (9, "c")]:
        d.append(time, payload)
    return d


class TestInsertHistoric:
    def test_inserts_between_existing_times(self, directory):
        index = directory.insert_historic(4, "x")
        assert index == 1
        assert directory.times() == (2, 4, 5, 9)
        assert directory.floor(4) == (4, "x")
        assert directory.strictly_before(5) == (4, "x")

    def test_inserts_before_all(self, directory):
        index = directory.insert_historic(0, "z")
        assert index == 0
        assert directory.times() == (0, 2, 5, 9)

    def test_latest_pointer_unaffected(self, directory):
        directory.insert_historic(4, "x")
        assert directory.latest == "c"
        assert directory.latest_time == 9

    def test_rejects_at_or_after_latest(self, directory):
        with pytest.raises(AppendOrderError):
            directory.insert_historic(9, "x")
        with pytest.raises(AppendOrderError):
            directory.insert_historic(12, "x")

    def test_rejects_existing_time(self, directory):
        with pytest.raises(AppendOrderError):
            directory.insert_historic(5, "x")

    def test_rejects_on_empty(self):
        empty: TimeDirectory[str] = TimeDirectory()
        with pytest.raises(EmptyStructureError):
            empty.insert_historic(1, "x")

    def test_appends_still_work_afterwards(self, directory):
        directory.insert_historic(3, "x")
        directory.append(11, "d")
        assert directory.times() == (2, 3, 5, 9, 11)
        with pytest.raises(AppendOrderError):
            directory.append(11, "e")
