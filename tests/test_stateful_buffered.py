"""Hypothesis stateful test: the buffered (G_d) cube against a dense model.

A rule-based machine interleaves in-order and out-of-order updates,
single queries, batched fast queries and bounded drains on a
:class:`~repro.ecube.buffered.BufferedEvolvingDataCube`, checking every
answer -- metered and fast -- against a dense numpy oracle after every
step.  This pins the drain's convergence (buffered mass only moves into
the cube, never disappears) and the fast/metered equivalence of the
batched ``G_d`` post-processing on arbitrary interleavings.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.types import Box
from repro.ecube.buffered import BufferedEvolvingDataCube

TIME_DOMAIN = 24
CELL_DOMAIN = 8


class BufferedCubeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cube = BufferedEvolvingDataCube(
            (CELL_DOMAIN,), num_times=TIME_DOMAIN
        )
        self.dense = np.zeros((TIME_DOMAIN, CELL_DOMAIN), dtype=np.int64)

    def _draw_box(self, data):
        t_low = data.draw(st.integers(0, TIME_DOMAIN - 1))
        t_up = data.draw(st.integers(t_low, TIME_DOMAIN - 1))
        x_low = data.draw(st.integers(0, CELL_DOMAIN - 1))
        x_up = data.draw(st.integers(x_low, CELL_DOMAIN - 1))
        return Box((t_low, x_low), (t_up, x_up))

    def _expected(self, box):
        return int(
            self.dense[
                box.lower[0] : box.upper[0] + 1,
                box.lower[1] : box.upper[1] + 1,
            ].sum()
        )

    @rule(
        t=st.integers(0, TIME_DOMAIN - 1),
        x=st.integers(0, CELL_DOMAIN - 1),
        delta=st.integers(-4, 8),
    )
    def update(self, t, x, delta):
        self.cube.update((t, x), delta)
        self.dense[t, x] += delta

    @rule(data=st.data())
    def update_many_fast(self, data):
        count = data.draw(st.integers(1, 8))
        points = np.column_stack(
            (
                np.asarray(
                    data.draw(
                        st.lists(
                            st.integers(0, TIME_DOMAIN - 1),
                            min_size=count,
                            max_size=count,
                        )
                    )
                ),
                np.asarray(
                    data.draw(
                        st.lists(
                            st.integers(0, CELL_DOMAIN - 1),
                            min_size=count,
                            max_size=count,
                        )
                    )
                ),
            )
        )
        deltas = np.asarray(
            data.draw(
                st.lists(st.integers(-4, 8), min_size=count, max_size=count)
            )
        )
        self.cube.update_many(points, deltas, mode="fast")
        np.add.at(self.dense, (points[:, 0], points[:, 1]), deltas)

    @precondition(lambda self: self.cube.buffered_updates > 0)
    @rule(limit=st.one_of(st.none(), st.integers(1, 4)))
    def drain(self, limit):
        before = self.cube.buffered_updates
        applied, kept = self.cube.drain(limit)
        # convergence: every drained correction lands (no data aging here)
        assert kept == 0
        assert self.cube.buffered_updates == before - applied

    @rule(data=st.data())
    def query(self, data):
        box = self._draw_box(data)
        assert self.cube.query(box) == self._expected(box)

    @rule(data=st.data())
    def query_many_fast_equals_metered(self, data):
        boxes = [
            self._draw_box(data) for _ in range(data.draw(st.integers(1, 5)))
        ]
        fast = self.cube.query_many(boxes, mode="fast")
        assert fast == self.cube.query_many(boxes, mode="metered")
        assert fast == [self._expected(box) for box in boxes]

    @invariant()
    def total_matches(self):
        assert self.cube.total() == int(self.dense.sum())


TestBufferedCubeMachine = BufferedCubeMachine.TestCase
TestBufferedCubeMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
