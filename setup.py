"""Legacy setup shim: the offline environment lacks the `wheel` package, so
`pip install -e .` must take setuptools' develop path.  All metadata lives
in pyproject.toml."""

from setuptools import setup

setup()
